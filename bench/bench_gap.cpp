/**
 * @file
 * GAP-methodology native benchmark: every kernel timed against its
 * work-efficient sequential baseline (core::seq), reporting
 * baseline-normalized speedup instead of the 1-thread-parallel
 * normalization the other harnesses use (EXPERIMENTS.md discusses the
 * gap between the two). Rules follow the GAP Benchmark Suite:
 *
 *  - BFS / SSSP / DFS run one trial from each of 64 pre-drawn random
 *    non-isolated sources (--sources overrides; --quick uses 4) and
 *    report the per-trial average;
 *  - non-source kernels average over a fixed trial count;
 *  - only the kernel call is timed: graph generation and file I/O
 *    stay outside, while per-run state (frontier allocation, the
 *    delta-stepping light/heavy split) stays inside, as it is work
 *    the algorithm requires;
 *  - inputs are GAP-scale: a road network (default 1024x1024, the
 *    long-diameter heavy-weight regime where delta-stepping is the
 *    headline) and a GAP-spec Kronecker graph (default scale 20,
 *    edge_factor 16).
 *
 * SSSP rows cover the paper's flag-scan structure, the paced
 * work-list mode (kAdaptive), and bucketed delta-stepping; the
 * harness prints the delta-vs-best-work-list ratio the acceptance
 * bar in EXPERIMENTS.md records.
 *
 * `--json=DIR` writes DIR/table_gap.json, a "crono.bench.v1"
 * document; every row carries the add-only seq_seconds / speedup /
 * trials fields (tests/report_schema_test.cpp parses and checks
 * them).
 *
 * Options beyond the common set: --threads=N (default: hardware
 * concurrency), --sources=N, --scale=N (Kronecker), --road-side=N,
 * --input=road|kron|matrix|all.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/sequential.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace {

using namespace crono;
using graph::VertexId;

struct GapOptions {
    bench::Options base;
    int threads = 0;       ///< 0 = hardware concurrency
    int sources = bench::kGapSourceTrials;
    int trials = 3;        ///< non-source kernels
    unsigned scale = 20;   ///< Kronecker log2 vertices
    VertexId road_side = 1024;
    graph::Dist delta = 0; ///< delta-stepping width (0 = auto heuristic)
    std::string input = "all";
};

GapOptions
parseGapOptions(int argc, char** argv)
{
    GapOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char* const a = argv[i];
        if (std::strcmp(a, "--quick") == 0) {
            opt.base.quick = true;
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            opt.base.seed = std::strtoull(a + 7, nullptr, 10);
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            opt.base.json_dir = a + 7;
        } else if (std::strcmp(a, "--json") == 0) {
            opt.base.json_dir = ".";
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            opt.threads = std::atoi(a + 10);
        } else if (std::strncmp(a, "--sources=", 10) == 0) {
            opt.sources = std::atoi(a + 10);
        } else if (std::strncmp(a, "--trials=", 9) == 0) {
            opt.trials = std::atoi(a + 9);
        } else if (std::strncmp(a, "--scale=", 8) == 0) {
            opt.scale = static_cast<unsigned>(std::atoi(a + 8));
        } else if (std::strncmp(a, "--road-side=", 12) == 0) {
            opt.road_side = static_cast<VertexId>(std::atoi(a + 12));
        } else if (std::strncmp(a, "--delta=", 8) == 0) {
            opt.delta = std::strtoull(a + 8, nullptr, 10);
        } else if (std::strncmp(a, "--input=", 8) == 0) {
            opt.input = a + 8;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a);
        }
    }
    if (opt.base.quick) {
        opt.sources = std::min(opt.sources, 4);
        opt.trials = std::min(opt.trials, 2);
        opt.scale = std::min(opt.scale, 12u);
        opt.road_side = std::min<VertexId>(opt.road_side, 64);
    }
    if (opt.threads <= 0) {
        opt.threads = std::max(1u, std::thread::hardware_concurrency());
    }
    return opt;
}

/** Defeat dead-code elimination of the sequential baselines. */
std::uint64_t g_sink = 0;

double g_best_worklist_road = 0.0;
double g_delta_road = 0.0;

std::vector<obs::BenchResult> g_rows;

void
addRow(const std::string& short_kernel, const char* paper_kernel,
       const std::string& graph_tag, std::uint64_t vertices,
       std::uint64_t edges, int threads, const std::string& mode,
       const std::vector<double>& par_trials, double seq_seconds,
       double variability, std::uint64_t rounds,
       std::vector<std::pair<std::string, std::uint64_t>> counters)
{
    double par_total = 0.0;
    for (const double t : par_trials) {
        par_total += t;
    }
    const double par_seconds =
        par_trials.empty()
            ? 0.0
            : par_total / static_cast<double>(par_trials.size());
    obs::BenchResult row;
    row.name = "gap/" + short_kernel + "/" + graph_tag + "/" + mode +
               "/t" + std::to_string(threads);
    row.kernel = paper_kernel;
    row.graph = graph_tag;
    row.vertices = vertices;
    row.edges = edges;
    row.threads = threads;
    row.mode = mode;
    row.time_seconds = par_seconds;
    row.edges_per_second =
        par_seconds > 0.0 ? static_cast<double>(edges) / par_seconds
                          : 0.0;
    row.variability = variability;
    row.rounds = rounds;
    row.seq_seconds = seq_seconds;
    row.speedup = par_seconds > 0.0 ? seq_seconds / par_seconds : 0.0;
    row.trials = par_trials.size();
    row.setTrialPercentiles(par_trials);
    row.counters = std::move(counters);
    g_rows.push_back(std::move(row));
    std::printf("%-10s %-16s %-10s %10.4fs %10.4fs %8.2fx  p50 %.4fs "
                "p99 %.4fs\n",
                short_kernel.c_str(), graph_tag.c_str(), mode.c_str(),
                par_seconds, seq_seconds,
                par_seconds > 0.0 ? seq_seconds / par_seconds : 0.0,
                row.p50_seconds, row.p99_seconds);
}

/**
 * Source-trial kernel: one par(src) and seq(src) trial per GAP
 * source; the row reports the averages plus the per-trial p50/p99.
 */
template <class Par, class Seq>
void
sourceKernel(const GapOptions& opt, const std::string& short_kernel,
             const char* paper_kernel, const std::string& graph_tag,
             const graph::Graph& g, const std::string& mode, Par&& par,
             Seq&& seq)
{
    const std::vector<VertexId> sources =
        bench::gapSources(g, opt.sources, opt.base.seed * 7919 + 17);
    std::vector<double> par_trials;
    par_trials.reserve(sources.size());
    double seq_total = 0.0, vari = 0.0;
    std::uint64_t rounds = 0;
    const obs::CounterSnapshot before = obs::counterSnapshot();
    for (const VertexId src : sources) {
        par_trials.push_back(bench::timedSeconds([&] {
            const rt::RunInfo info = par(src, &rounds);
            vari += info.variability;
        }));
        seq_total += bench::timedSeconds([&] { seq(src); });
    }
    const auto k = static_cast<double>(sources.size());
    addRow(short_kernel, paper_kernel, graph_tag, g.numVertices(),
           g.numEdges(), opt.threads, mode, par_trials, seq_total / k,
           vari / k, rounds,
           obs::counterDiff(before, obs::counterSnapshot()));
}

/** Fixed-trial kernel (no source): average over opt.trials runs. */
template <class Par, class Seq>
void
fixedKernel(const GapOptions& opt, const std::string& short_kernel,
            const char* paper_kernel, const std::string& graph_tag,
            std::uint64_t vertices, std::uint64_t edges,
            const std::string& mode, Par&& par, Seq&& seq)
{
    std::vector<double> par_trials;
    par_trials.reserve(static_cast<std::size_t>(opt.trials));
    double seq_total = 0.0, vari = 0.0;
    const obs::CounterSnapshot before = obs::counterSnapshot();
    for (int t = 0; t < opt.trials; ++t) {
        par_trials.push_back(bench::timedSeconds([&] {
            const rt::RunInfo info = par();
            vari += info.variability;
        }));
        seq_total += bench::timedSeconds([&] { seq(); });
    }
    const auto k = static_cast<double>(opt.trials);
    addRow(short_kernel, paper_kernel, graph_tag, vertices, edges,
           opt.threads, mode, par_trials, seq_total / k, vari / k, 0,
           obs::counterDiff(before, obs::counterSnapshot()));
}

void
runCsrSection(const GapOptions& opt, rt::NativeExecutor& exec,
              const graph::Graph& g, const std::string& graph_tag,
              bool full_suite, bool is_road)
{
    const int nt = opt.threads;

    sourceKernel(opt, "bfs", "BFS", graph_tag, g, "adaptive",
                 [&](VertexId src, std::uint64_t* rounds) {
                     auto res =
                         core::bfs(exec, nt, g, src, graph::kNoVertex,
                                   nullptr, rt::FrontierMode::kAdaptive);
                     *rounds = 0;
                     g_sink += res.reached;
                     return res.run;
                 },
                 [&](VertexId src) {
                     g_sink += core::seq::bfsLevels(g, src).back();
                 });

    // SSSP three ways against one Dijkstra baseline: the paper's
    // flag-scan structure, the paced work-list mode, delta-stepping.
    const struct {
        const char* mode;
        core::SsspAlgo algo;
        rt::FrontierMode fmode;
    } sssp_variants[] = {
        {"flagscan", core::SsspAlgo::kWorkList,
         rt::FrontierMode::kFlagScan},
        {"worklist", core::SsspAlgo::kWorkList,
         rt::FrontierMode::kAdaptive},
        {"delta", core::SsspAlgo::kDeltaStep, rt::FrontierMode::kSparse},
    };
    // Light/heavy split: a (graph, delta) artifact like GAP's
    // transpose, built once outside the per-source trials.
    const graph::Dist eff_delta =
        opt.delta != 0 ? opt.delta : core::autoDelta(g, nt);
    const core::EdgeSplit split = core::splitEdgesAtDelta(g, eff_delta);
    for (const auto& variant : sssp_variants) {
        sourceKernel(
            opt, "sssp", "SSSP_DIJK", graph_tag, g, variant.mode,
            [&](VertexId src, std::uint64_t* rounds) {
                auto res =
                    variant.algo == core::SsspAlgo::kDeltaStep
                        ? core::deltaSteppingSssp(exec, nt, g, src,
                                                  nullptr, eff_delta,
                                                  &split)
                        : core::sssp(exec, nt, g, src, nullptr,
                                     variant.fmode);
                *rounds = res.rounds;
                g_sink += res.dist[0];
                return res.run;
            },
            [&](VertexId src) { g_sink += core::seq::sssp(g, src)[0]; });
        const obs::BenchResult& row = g_rows.back();
        if (is_road) {
            if (variant.algo == core::SsspAlgo::kDeltaStep) {
                g_delta_road = row.time_seconds;
            } else if (g_best_worklist_road == 0.0 ||
                       row.time_seconds < g_best_worklist_road) {
                g_best_worklist_road = row.time_seconds;
            }
        }
    }

    fixedKernel(opt, "pagerank", "PAGE_RANK", graph_tag,
                g.numVertices(), g.numEdges(), "scatter",
                [&] {
                    auto res = core::pageRank(exec, nt, g, 5, 0.15,
                                              nullptr,
                                              core::PageRankMode::kScatter);
                    g_sink += static_cast<std::uint64_t>(
                        res.rank[0] * 1e9);
                    return res.run;
                },
                [&] {
                    g_sink += static_cast<std::uint64_t>(
                        core::seq::pageRank(g, 5, 0.15)[0] * 1e9);
                });

    if (!full_suite) {
        return;
    }

    sourceKernel(opt, "dfs", "DFS", graph_tag, g, "default",
                 [&](VertexId src, std::uint64_t* rounds) {
                     auto res = core::dfs(exec, nt, g, src);
                     *rounds = 0;
                     g_sink += res.visited;
                     return res.run;
                 },
                 [&](VertexId src) {
                     g_sink += core::seq::dfsOrder(g, src).size();
                 });

    fixedKernel(opt, "conncomp", "CONN_COMP", graph_tag,
                g.numVertices(), g.numEdges(), "adaptive",
                [&] {
                    auto res = core::connectedComponents(
                        exec, nt, g, nullptr,
                        rt::FrontierMode::kAdaptive);
                    g_sink += res.num_components;
                    return res.run;
                },
                [&] { g_sink += core::seq::componentLabels(g)[0]; });

    fixedKernel(opt, "tricnt", "TRI_CNT", graph_tag, g.numVertices(),
                g.numEdges(), "default",
                [&] {
                    auto res = core::triangleCount(exec, nt, g);
                    g_sink += res.total;
                    return res.run;
                },
                [&] { g_sink += core::seq::triangleCountFast(g); });

    fixedKernel(opt, "comm", "COMM", graph_tag, g.numVertices(),
                g.numEdges(), "default",
                [&] {
                    auto res =
                        core::communityDetection(exec, nt, g, 8);
                    g_sink += res.moves;
                    return res.run;
                },
                [&] { g_sink += core::seq::communityLabels(g, 8)[0]; });
}

void
runMatrixSection(const GapOptions& opt, rt::NativeExecutor& exec)
{
    namespace gen = graph::generators;
    const int nt = opt.threads;
    const VertexId mn = opt.base.quick ? 64 : 192;
    const VertexId cities_n = opt.base.quick ? 9 : 12;
    const graph::AdjacencyMatrix m(gen::uniformRandom(
        mn, static_cast<graph::EdgeId>(mn) * 6, 64, opt.base.seed + 3));
    const graph::AdjacencyMatrix cities =
        gen::tspCities(cities_n, opt.base.seed + 4);
    const std::string tag = "matrix(" + std::to_string(mn) + ")";
    const auto n64 = static_cast<std::uint64_t>(mn);

    fixedKernel(opt, "apsp", "APSP", tag, n64, n64 * n64, "flagscan",
                [&] {
                    auto res = core::apsp(exec, nt, m);
                    g_sink += res.dist[1];
                    return res.run;
                },
                [&] { g_sink += core::seq::apsp(m)[1]; });

    fixedKernel(opt, "betw", "BETW_CENT", tag, n64, n64 * n64,
                "flagscan",
                [&] {
                    auto res = core::betweenness(exec, nt, m);
                    g_sink += res.centrality[0];
                    return res.run;
                },
                [&] { g_sink += core::seq::betweenness(m)[0]; });

    const std::string ctag = "cities(" + std::to_string(cities_n) + ")";
    fixedKernel(opt, "tsp", "TSP", ctag, cities_n, cities_n * cities_n,
                "default",
                [&] {
                    auto res = core::tsp(exec, nt, cities);
                    g_sink += res.cost;
                    return res.run;
                },
                [&] { g_sink += core::seq::tspCost(cities); });
}

} // namespace

int
main(int argc, char** argv)
{
    const GapOptions opt = parseGapOptions(argc, argv);
    namespace gen = graph::generators;
    obs::TelemetrySession session;
    rt::NativeExecutor exec(opt.threads);

    std::printf("GAP-methodology baseline-normalized benchmark "
                "(threads=%d, sources=%d, trials=%d, seed=%llu)\n",
                opt.threads, opt.sources, opt.trials,
                static_cast<unsigned long long>(opt.base.seed));
    std::printf("%-10s %-16s %-10s %11s %11s %9s\n", "kernel", "graph",
                "mode", "t_par", "t_seq", "speedup");

    if (opt.input == "all" || opt.input == "road") {
        const graph::Graph road = gen::roadNetwork(
            opt.road_side, opt.road_side, opt.base.seed);
        const std::string tag =
            "road(" + std::to_string(opt.road_side) + "^2)";
        runCsrSection(opt, exec, road, tag, /*full_suite=*/true,
                      /*is_road=*/true);
    }
    if (opt.input == "all" || opt.input == "kron") {
        // GAP's Kronecker input; BFS / SSSP / PageRank are the
        // kernels GAP specifies on it (the acceptance set for native
        // multi-million-vertex runs).
        const graph::Graph kron =
            gen::kronecker(opt.scale, 16, 255, opt.base.seed + 1);
        const std::string tag =
            "kron(2^" + std::to_string(opt.scale) + ",ef16)";
        runCsrSection(opt, exec, kron, tag, /*full_suite=*/false,
                      /*is_road=*/false);
    }
    if (opt.input == "all" || opt.input == "matrix") {
        runMatrixSection(opt, exec);
    }

    if (g_delta_road > 0.0 && g_best_worklist_road > 0.0) {
        std::printf("\ndelta-stepping vs best work-list SSSP on road: "
                    "%.2fx\n", g_best_worklist_road / g_delta_road);
    }

    if (!opt.base.json_dir.empty()) {
        const std::string path = opt.base.json_dir + "/table_gap.json";
        if (!bench::writeBenchReport(path, g_rows)) {
            return 1;
        }
    }
    (void)g_sink;
    return 0;
}

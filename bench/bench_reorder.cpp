/**
 * @file
 * Ordering x kernel speedup table for the reordering subsystem
 * (graph/reorder.h): every Reordering is applied (with the blocked
 * layout attached, so the bin-major pull/gather paths run) to a road
 * network and a power-law social network, each kernel is timed
 * natively, and the table reports per-ordering speedup over kNone.
 * The acceptance bar recorded in EXPERIMENTS.md: the best ordering
 * must reach >= 1.2x over kNone on at least one social-graph kernel.
 *
 * A second section replays a reduced (ordering, kernel) grid on the
 * simulator and reports the locality movement — L1-D miss rate and
 * the paper's cache-hierarchy miss rate — that explains the native
 * wall-time wins.
 *
 * `--json=DIR` additionally writes DIR/table_reorder.json, a
 * "crono.bench.v1" document with one row per (kernel, graph,
 * ordering) cell; tests/report_schema_test.cpp parses it.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/reorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace {

using namespace crono;
using graph::Reordering;

constexpr int kThreads = 4;

struct KernelSpec {
    const char* name;   ///< row label and JSON name component
    const char* kernel; ///< paper identifier for the JSON row
    rt::RunInfo (*run)(rt::NativeExecutor&, const graph::Graph&,
                       graph::VertexId);
};

rt::RunInfo
runPageRankGather(rt::NativeExecutor& exec, const graph::Graph& g,
                  graph::VertexId)
{
    return core::pageRank(exec, kThreads, g, 5, 0.15, nullptr,
                          core::PageRankMode::kGather)
        .run;
}

rt::RunInfo
runBfs(rt::NativeExecutor& exec, const graph::Graph& g,
       graph::VertexId src)
{
    return core::bfs(exec, kThreads, g, src, graph::kNoVertex, nullptr,
                     rt::FrontierMode::kAdaptive)
        .run;
}

rt::RunInfo
runSssp(rt::NativeExecutor& exec, const graph::Graph& g,
        graph::VertexId src)
{
    return core::sssp(exec, kThreads, g, src, nullptr,
                      rt::FrontierMode::kAdaptive)
        .run;
}

rt::RunInfo
runConnComp(rt::NativeExecutor& exec, const graph::Graph& g,
            graph::VertexId)
{
    return core::connectedComponents(exec, kThreads, g, nullptr,
                                     rt::FrontierMode::kAdaptive)
        .run;
}

rt::RunInfo
runTriangles(rt::NativeExecutor& exec, const graph::Graph& g,
             graph::VertexId)
{
    return core::triangleCount(exec, kThreads, g).run;
}

const KernelSpec kKernels[] = {
    {"pagerank-gather", "PAGE_RANK", runPageRankGather},
    {"bfs", "BFS", runBfs},
    {"sssp", "SSSP_DIJK", runSssp},
    {"conncomp", "CONN_COMP", runConnComp},
    {"tricnt", "TRI_CNT", runTriangles},
};

/** One timed cell: best wall time of @p reps runs. */
struct Cell {
    double seconds = 0.0;
    rt::RunInfo info;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

Cell
timeCell(const KernelSpec& spec, rt::NativeExecutor& exec,
         const graph::ReorderedGraph& rg, int reps)
{
    Cell best;
    for (int rep = 0; rep < reps; ++rep) {
        obs::TelemetrySession session;
        const auto start = std::chrono::steady_clock::now();
        rt::RunInfo info =
            spec.run(exec, rg.graph, rg.perm.toNew(0));
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        if (rep == 0 || s < best.seconds) {
            best.seconds = s;
            best.info = std::move(info);
            best.counters = obs::counterTotals(session.recorder());
        }
    }
    return best;
}

struct BenchGraph {
    std::string name;   ///< table label, e.g. "social"
    std::string detail; ///< JSON graph field, e.g. "social(2^15,ef16)"
    graph::Graph g;
    bool is_social = false;
};

std::vector<BenchGraph>
benchGraphs(const bench::Options& opt)
{
    namespace gen = graph::generators;
    std::vector<BenchGraph> out;
    const unsigned scale = opt.quick ? 11 : 15;
    const graph::VertexId side = opt.quick ? 96 : 256;
    out.push_back({"road",
                   "road(" + std::to_string(side) + "," +
                       std::to_string(side) + ")",
                   gen::roadNetwork(side, side, opt.seed), false});
    out.push_back({"social",
                   "social(2^" + std::to_string(scale) + ",ef16)",
                   gen::socialNetwork(scale, 16, opt.seed + 1), true});
    return out;
}

/** Simulator locality movement for one (graph, ordering) pair. */
void
simLocalitySection(const bench::Options& opt)
{
    std::printf("\n== simulator locality (PageRank gather, 8 simulated "
                "cores) ==\n");
    std::printf("%-8s %-10s %14s %10s %12s\n", "graph", "ordering",
                "cycles", "L1D-miss", "hier-miss");
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 8;
    namespace gen = graph::generators;
    const graph::Graph road = gen::roadNetwork(24, 24, opt.seed);
    const graph::Graph social = gen::socialNetwork(9, 8, opt.seed + 1);
    const std::pair<const char*, const graph::Graph*> graphs[] = {
        {"road", &road}, {"social", &social}};
    for (const auto& [gname, gptr] : graphs) {
        for (const Reordering r :
             {Reordering::kNone, Reordering::kDegreeSort,
              Reordering::kRcm}) {
            const graph::ReorderedGraph rg =
                graph::reorderGraph(*gptr, r, /*blocked=*/true);
            sim::Machine machine(cfg);
            core::pageRank(machine, 8, rg.graph, 3, 0.15, nullptr,
                           core::PageRankMode::kGather);
            const sim::SimRunStats& st = machine.lastStats();
            std::printf("%-8s %-10s %14llu %9.2f%% %11.2f%%\n", gname,
                        graph::reorderingName(r),
                        static_cast<unsigned long long>(
                            st.completion_cycles),
                        100.0 * st.l1d.missRate(),
                        100.0 * st.cacheHierarchyMissRate());
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const bench::Options opt = bench::parseOptions(argc, argv);
    const int reps = opt.quick ? 2 : 3;
    const std::vector<BenchGraph> graphs = benchGraphs(opt);

    std::vector<obs::BenchResult> rows;
    double best_social_speedup = 0.0;
    std::string best_social_label;

    for (const BenchGraph& bg : graphs) {
        std::printf("== %s: %u vertices, %llu edge slots ==\n",
                    bg.detail.c_str(), bg.g.numVertices(),
                    static_cast<unsigned long long>(bg.g.numEdges()));
        std::printf("%-16s", "kernel");
        for (const Reordering r : graph::allReorderings()) {
            std::printf(" %13s", graph::reorderingName(r));
        }
        std::printf("   (ms per run; speedup vs none)\n");

        // Relabel once per ordering, reporting the reorder cost.
        std::vector<graph::ReorderedGraph> relabeled;
        for (const Reordering r : graph::allReorderings()) {
            const auto start = std::chrono::steady_clock::now();
            relabeled.push_back(
                graph::reorderGraph(bg.g, r, /*blocked=*/true));
            const double ms =
                1e3 * std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
            std::printf("   reorder %-10s %8.2f ms\n",
                        graph::reorderingName(r), ms);
        }

        rt::NativeExecutor exec(kThreads);
        for (const KernelSpec& spec : kKernels) {
            std::printf("%-16s", spec.name);
            double base_seconds = 0.0;
            for (std::size_t ri = 0; ri < relabeled.size(); ++ri) {
                const Reordering r = graph::allReorderings()[ri];
                const Cell cell =
                    timeCell(spec, exec, relabeled[ri], reps);
                if (r == Reordering::kNone) {
                    base_seconds = cell.seconds;
                }
                const double speedup =
                    cell.seconds > 0.0 ? base_seconds / cell.seconds
                                       : 0.0;
                std::printf(" %7.2f %4.2fx", 1e3 * cell.seconds,
                            speedup);
                if (bg.is_social && r != Reordering::kNone &&
                    speedup > best_social_speedup) {
                    best_social_speedup = speedup;
                    best_social_label =
                        std::string(spec.name) + "/" +
                        graph::reorderingName(r);
                }

                obs::BenchResult row;
                row.name = std::string(spec.name) + "/" + bg.name +
                           "/" + graph::reorderingName(r) + "/t" +
                           std::to_string(kThreads);
                row.kernel = spec.kernel;
                row.graph = bg.detail;
                row.vertices = bg.g.numVertices();
                row.edges = bg.g.numEdges();
                row.threads = kThreads;
                row.mode = graph::reorderingName(r);
                row.time_seconds = cell.seconds;
                row.edges_per_second =
                    cell.seconds > 0.0
                        ? static_cast<double>(bg.g.numEdges()) /
                              cell.seconds
                        : 0.0;
                row.variability = cell.info.variability;
                row.counters = cell.counters;
                rows.push_back(std::move(row));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }

    std::printf("best social-graph speedup vs none: %.2fx (%s)\n",
                best_social_speedup, best_social_label.c_str());

    simLocalitySection(opt);

    if (!opt.json_dir.empty()) {
        const std::string path = opt.json_dir + "/table_reorder.json";
        if (!bench::writeBenchReport(path, rows)) {
            return 1;
        }
    }
    return 0;
}

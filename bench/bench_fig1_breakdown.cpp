/**
 * @file
 * Figure 1: normalized completion-time breakdowns for all CRONO
 * benchmarks on the simulated 256-core in-order multicore, across
 * thread counts 1..256, with the load-imbalance Variability metric
 * and the best speedup over the sequential (1-thread) run.
 *
 * Also prints Table II (the architectural configuration) as a header.
 */

#include "bench/bench_common.h"

int
main(int argc, char** argv)
{
    using namespace crono;
    const bench::Options opt = bench::parseOptions(argc, argv);

    const sim::Config cfg = sim::Config::futuristic256();
    std::printf("=== Figure 1: completion time breakdowns (simulator) "
                "===\n\n%s\n",
                cfg.describe().c_str());

    const core::WorkloadConfig wc = bench::simWorkloadConfig(opt);
    const core::WorkloadSet set(wc);
    std::printf("sparse synthetic graph: %u vertices, %llu edge slots; "
                "matrix: %u vertices; TSP: %u cities\n\n",
                set.graph().numVertices(),
                static_cast<unsigned long long>(set.graph().numEdges()),
                set.matrix().numVertices(), set.cities().numVertices());

    const auto threads = bench::simThreadCounts();
    for (const auto& info : core::allBenchmarks()) {
        std::printf("--- %s (%s) ---\n", info.name, info.parallelization);
        bench::printBreakdownHeader();
        const auto sweep = bench::sweepSim(
            cfg, info.id, set.forBenchmark(info.id), threads);
        const std::uint64_t base = sweep.front().stats.completion_cycles;
        for (const auto& p : sweep) {
            bench::printBreakdownRow(p, base);
        }
        const std::size_t best = bench::bestPoint(sweep);
        std::printf("best speedup: %.2fx @ %d threads\n\n",
                    static_cast<double>(base) /
                        static_cast<double>(
                            sweep[best].stats.completion_cycles),
                    sweep[best].threads);
    }
    return 0;
}

/**
 * @file
 * Branch-and-bound scaling table for the two rt::bnb kernels (TSP and
 * maximum-common-subgraph). Each kernel runs a native thread sweep in
 * every search mode the framework supports:
 *
 *  - TSP: "capture" (static branch designation, no donation — the
 *    paper-faithful structure), "donate" (BranchStack work donation
 *    enabled), "replay" (deterministic: round-robin branches,
 *    thread-local bounds, tid-ordered merge);
 *  - MCS: "donate" (its default — few top-level branches make
 *    donation the only load-balancing lever) and "replay".
 *
 * Speedups are normalized to the exhaustive sequential baselines
 * (core::seq::tspCost / core::seq::mcsSize), timed once per instance.
 * Only the kernel call is timed; instance generation stays outside.
 * Rows carry the search counters (branches, donations,
 * bidomain_splits) so a donation-policy change shows up in the report
 * even when wall-clock hides it.
 *
 * `--json=DIR` writes DIR/table_bnb.json ("crono.bench.v1");
 * scripts/check_regression.sh gates `--quick --threads=1` against
 * bench/baselines/bnb_quick_t1.json.
 *
 * Options beyond the common set: --threads=N (sweep 1,2,4,..,N;
 * default: hardware concurrency), --trials=N, --cities=N,
 * --pattern=N / --target=N / --labels=N (MCS instance).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/mcs.h"
#include "core/sequential.h"
#include "core/tsp.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace {

using namespace crono;
using graph::VertexId;

struct BnbOptions {
    bench::Options base;
    int threads = 0; ///< sweep cap; 0 = hardware concurrency
    int trials = 3;
    VertexId cities = 12;
    VertexId pattern = 9;
    VertexId target = 11;
    std::uint32_t labels = 3;
};

BnbOptions
parseBnbOptions(int argc, char** argv)
{
    BnbOptions opt;
    for (int i = 1; i < argc; ++i) {
        const char* const a = argv[i];
        if (std::strcmp(a, "--quick") == 0) {
            opt.base.quick = true;
        } else if (std::strncmp(a, "--seed=", 7) == 0) {
            opt.base.seed = std::strtoull(a + 7, nullptr, 10);
        } else if (std::strncmp(a, "--json=", 7) == 0) {
            opt.base.json_dir = a + 7;
        } else if (std::strcmp(a, "--json") == 0) {
            opt.base.json_dir = ".";
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            opt.threads = std::atoi(a + 10);
        } else if (std::strncmp(a, "--trials=", 9) == 0) {
            opt.trials = std::atoi(a + 9);
        } else if (std::strncmp(a, "--cities=", 9) == 0) {
            opt.cities = static_cast<VertexId>(std::atoi(a + 9));
        } else if (std::strncmp(a, "--pattern=", 10) == 0) {
            opt.pattern = static_cast<VertexId>(std::atoi(a + 10));
        } else if (std::strncmp(a, "--target=", 9) == 0) {
            opt.target = static_cast<VertexId>(std::atoi(a + 9));
        } else if (std::strncmp(a, "--labels=", 9) == 0) {
            opt.labels = static_cast<std::uint32_t>(std::atoi(a + 9));
        } else {
            std::fprintf(stderr, "unknown option: %s\n", a);
        }
    }
    if (opt.base.quick) {
        opt.trials = std::min(opt.trials, 2);
        opt.cities = std::min<VertexId>(opt.cities, 10);
        opt.pattern = std::min<VertexId>(opt.pattern, 7);
        opt.target = std::min<VertexId>(opt.target, 9);
    }
    if (opt.threads <= 0) {
        opt.threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    }
    return opt;
}

/** 1,2,4,... up to the cap; the cap itself when not a power of two. */
std::vector<int>
threadSweep(int max_threads)
{
    std::vector<int> out;
    for (int t = 1; t <= max_threads; t *= 2) {
        out.push_back(t);
    }
    if (out.back() != max_threads) {
        out.push_back(max_threads);
    }
    return out;
}

/** Defeat dead-code elimination of the baselines. */
std::uint64_t g_sink = 0;

std::vector<obs::BenchResult> g_rows;

void
addRow(const std::string& short_kernel, const char* paper_kernel,
       const std::string& instance_tag, std::uint64_t vertices,
       std::uint64_t edges, int threads, const std::string& mode,
       const std::vector<double>& par_trials, double seq_seconds,
       double variability, std::uint64_t nodes,
       std::vector<std::pair<std::string, std::uint64_t>> counters)
{
    double par_total = 0.0;
    for (const double t : par_trials) {
        par_total += t;
    }
    const double par_seconds =
        par_trials.empty()
            ? 0.0
            : par_total / static_cast<double>(par_trials.size());
    obs::BenchResult row;
    row.name = "bnb/" + short_kernel + "/" + instance_tag + "/" + mode +
               "/t" + std::to_string(threads);
    row.kernel = paper_kernel;
    row.graph = instance_tag;
    row.vertices = vertices;
    row.edges = edges;
    row.threads = threads;
    row.mode = mode;
    row.time_seconds = par_seconds;
    row.variability = variability;
    // For a search kernel the natural work unit is tree nodes, not
    // frontier rounds; reuse the rounds slot for the node count.
    row.rounds = nodes;
    row.seq_seconds = seq_seconds;
    row.speedup = par_seconds > 0.0 ? seq_seconds / par_seconds : 0.0;
    row.trials = par_trials.size();
    row.setTrialPercentiles(par_trials);
    row.counters = std::move(counters);
    g_rows.push_back(std::move(row));
    std::printf("%-6s %-14s %-8s t%-3d %10.4fs %10.4fs %8.2fx %10llu "
                "nodes\n",
                short_kernel.c_str(), instance_tag.c_str(), mode.c_str(),
                threads, par_seconds, seq_seconds,
                par_seconds > 0.0 ? seq_seconds / par_seconds : 0.0,
                static_cast<unsigned long long>(nodes));
}

/** Time @p par over opt.trials runs; one counter window per row. */
template <class Par>
void
searchKernel(const BnbOptions& opt, const std::string& short_kernel,
             const char* paper_kernel, const std::string& instance_tag,
             std::uint64_t vertices, std::uint64_t edges, int threads,
             const std::string& mode, double seq_seconds, Par&& par)
{
    std::vector<double> par_trials;
    par_trials.reserve(static_cast<std::size_t>(opt.trials));
    double vari = 0.0;
    std::uint64_t nodes = 0;
    const obs::CounterSnapshot before = obs::counterSnapshot();
    for (int t = 0; t < opt.trials; ++t) {
        par_trials.push_back(bench::timedSeconds([&] {
            const rt::RunInfo info = par(&nodes);
            vari += info.variability;
        }));
    }
    addRow(short_kernel, paper_kernel, instance_tag, vertices, edges,
           threads, mode, par_trials,
           seq_seconds, vari / static_cast<double>(opt.trials), nodes,
           obs::counterDiff(before, obs::counterSnapshot()));
}

void
runTspSection(const BnbOptions& opt, rt::NativeExecutor& exec)
{
    namespace gen = graph::generators;
    const graph::AdjacencyMatrix cities =
        gen::tspCities(opt.cities, opt.base.seed + 4);
    const std::string tag = "cities(" + std::to_string(opt.cities) + ")";
    const auto n64 = static_cast<std::uint64_t>(opt.cities);

    const double seq_seconds = bench::timedSeconds(
        [&] { g_sink += core::seq::tspCost(cities); });

    const struct {
        const char* mode;
        rt::bnb::SearchConfig cfg;
    } variants[] = {
        {"capture", rt::bnb::SearchConfig{}},
        {"donate", [] {
             rt::bnb::SearchConfig c;
             c.donate_factor = 4;
             return c;
         }()},
        {"replay", [] {
             rt::bnb::SearchConfig c;
             c.deterministic = true;
             return c;
         }()},
    };
    for (const int nt : threadSweep(opt.threads)) {
        for (const auto& v : variants) {
            searchKernel(opt, "tsp", "TSP", tag, n64, n64 * n64, nt,
                         v.mode, seq_seconds,
                         [&](std::uint64_t* nodes) {
                             auto res = core::tsp(exec, nt, cities,
                                                  nullptr, v.cfg);
                             *nodes = res.stats.nodes;
                             g_sink += res.cost;
                             return res.run;
                         });
        }
    }
}

void
runMcsSection(const BnbOptions& opt, rt::NativeExecutor& exec)
{
    namespace gen = graph::generators;
    const graph::LabeledMatrix pattern = gen::labeledGraph(
        opt.pattern, static_cast<graph::EdgeId>(opt.pattern) * 2,
        opt.labels, opt.base.seed + 5);
    const graph::LabeledMatrix target = gen::labeledGraph(
        opt.target, static_cast<graph::EdgeId>(opt.target) * 2,
        opt.labels, opt.base.seed + 6);
    const std::string tag = "labeled(" + std::to_string(opt.pattern) +
                            "," + std::to_string(opt.target) + ")";
    const auto n64 = static_cast<std::uint64_t>(opt.pattern);
    const auto m64 = static_cast<std::uint64_t>(opt.target);

    const double seq_seconds = bench::timedSeconds(
        [&] { g_sink += core::seq::mcsSize(pattern, target); });

    const struct {
        const char* mode;
        rt::bnb::SearchConfig cfg;
    } variants[] = {
        {"donate", core::mcsDefaultConfig()},
        {"replay", [] {
             rt::bnb::SearchConfig c;
             c.deterministic = true;
             return c;
         }()},
    };
    for (const int nt : threadSweep(opt.threads)) {
        for (const auto& v : variants) {
            searchKernel(opt, "mcs", "MCS", tag, n64, n64 * m64, nt,
                         v.mode, seq_seconds,
                         [&](std::uint64_t* nodes) {
                             auto res = core::mcs(exec, nt, pattern,
                                                  target, nullptr,
                                                  v.cfg);
                             *nodes = res.stats.nodes;
                             g_sink += res.size;
                             return res.run;
                         });
        }
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const BnbOptions opt = parseBnbOptions(argc, argv);
    obs::TelemetrySession session;
    rt::NativeExecutor exec(opt.threads);

    std::printf("Branch-and-bound scaling table (threads<=%d, "
                "trials=%d, seed=%llu)\n",
                opt.threads, opt.trials,
                static_cast<unsigned long long>(opt.base.seed));
    std::printf("%-6s %-14s %-8s %-4s %11s %11s %9s %16s\n", "kernel",
                "instance", "mode", "thr", "t_par", "t_seq", "speedup",
                "tree");

    runTspSection(opt, exec);
    runMcsSection(opt, exec);

    if (!opt.base.json_dir.empty()) {
        const std::string path = opt.base.json_dir + "/table_bnb.json";
        if (!bench::writeBenchReport(path, g_rows)) {
            return 1;
        }
    }
    (void)g_sink;
    return 0;
}

# Empty dependencies file for bench_ablation_noc.
# This may be replaced when dependencies are built.

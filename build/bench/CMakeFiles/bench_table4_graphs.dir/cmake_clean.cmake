file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_graphs.dir/bench_table4_graphs.cpp.o"
  "CMakeFiles/bench_table4_graphs.dir/bench_table4_graphs.cpp.o.d"
  "bench_table4_graphs"
  "bench_table4_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

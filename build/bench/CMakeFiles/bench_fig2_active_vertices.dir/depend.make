# Empty dependencies file for bench_fig2_active_vertices.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_active_vertices.dir/bench_fig2_active_vertices.cpp.o"
  "CMakeFiles/bench_fig2_active_vertices.dir/bench_fig2_active_vertices.cpp.o.d"
  "bench_fig2_active_vertices"
  "bench_fig2_active_vertices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_active_vertices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

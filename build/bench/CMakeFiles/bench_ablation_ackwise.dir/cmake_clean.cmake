file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ackwise.dir/bench_ablation_ackwise.cpp.o"
  "CMakeFiles/bench_ablation_ackwise.dir/bench_ablation_ackwise.cpp.o.d"
  "bench_ablation_ackwise"
  "bench_ablation_ackwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ackwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

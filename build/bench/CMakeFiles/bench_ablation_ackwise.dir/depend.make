# Empty dependencies file for bench_ablation_ackwise.
# This may be replaced when dependencies are built.

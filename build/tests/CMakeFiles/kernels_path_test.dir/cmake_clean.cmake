file(REMOVE_RECURSE
  "CMakeFiles/kernels_path_test.dir/kernels_path_test.cpp.o"
  "CMakeFiles/kernels_path_test.dir/kernels_path_test.cpp.o.d"
  "kernels_path_test"
  "kernels_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

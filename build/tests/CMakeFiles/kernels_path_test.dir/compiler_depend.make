# Empty compiler generated dependencies file for kernels_path_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kernels_consistency_test.dir/kernels_consistency_test.cpp.o"
  "CMakeFiles/kernels_consistency_test.dir/kernels_consistency_test.cpp.o.d"
  "kernels_consistency_test"
  "kernels_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

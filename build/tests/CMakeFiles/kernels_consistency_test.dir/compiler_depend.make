# Empty compiler generated dependencies file for kernels_consistency_test.
# This may be replaced when dependencies are built.

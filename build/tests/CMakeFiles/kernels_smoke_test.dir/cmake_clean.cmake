file(REMOVE_RECURSE
  "CMakeFiles/kernels_smoke_test.dir/kernels_smoke_test.cpp.o"
  "CMakeFiles/kernels_smoke_test.dir/kernels_smoke_test.cpp.o.d"
  "kernels_smoke_test"
  "kernels_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

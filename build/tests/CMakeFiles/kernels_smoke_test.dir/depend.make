# Empty dependencies file for kernels_smoke_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sim_noc_dram_test.dir/sim_noc_dram_test.cpp.o"
  "CMakeFiles/sim_noc_dram_test.dir/sim_noc_dram_test.cpp.o.d"
  "sim_noc_dram_test"
  "sim_noc_dram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_noc_dram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

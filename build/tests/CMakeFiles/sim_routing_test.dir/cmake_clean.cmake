file(REMOVE_RECURSE
  "CMakeFiles/sim_routing_test.dir/sim_routing_test.cpp.o"
  "CMakeFiles/sim_routing_test.dir/sim_routing_test.cpp.o.d"
  "sim_routing_test"
  "sim_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sim_routing_test.
# This may be replaced when dependencies are built.

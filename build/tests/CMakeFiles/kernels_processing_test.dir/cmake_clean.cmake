file(REMOVE_RECURSE
  "CMakeFiles/kernels_processing_test.dir/kernels_processing_test.cpp.o"
  "CMakeFiles/kernels_processing_test.dir/kernels_processing_test.cpp.o.d"
  "kernels_processing_test"
  "kernels_processing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_processing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kernels_processing_test.
# This may be replaced when dependencies are built.

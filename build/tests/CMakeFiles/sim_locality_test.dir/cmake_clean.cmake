file(REMOVE_RECURSE
  "CMakeFiles/sim_locality_test.dir/sim_locality_test.cpp.o"
  "CMakeFiles/sim_locality_test.dir/sim_locality_test.cpp.o.d"
  "sim_locality_test"
  "sim_locality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

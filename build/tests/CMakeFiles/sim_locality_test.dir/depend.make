# Empty dependencies file for sim_locality_test.
# This may be replaced when dependencies are built.

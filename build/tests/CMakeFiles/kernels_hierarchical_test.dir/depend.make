# Empty dependencies file for kernels_hierarchical_test.
# This may be replaced when dependencies are built.

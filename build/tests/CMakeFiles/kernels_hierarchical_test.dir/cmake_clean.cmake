file(REMOVE_RECURSE
  "CMakeFiles/kernels_hierarchical_test.dir/kernels_hierarchical_test.cpp.o"
  "CMakeFiles/kernels_hierarchical_test.dir/kernels_hierarchical_test.cpp.o.d"
  "kernels_hierarchical_test"
  "kernels_hierarchical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_hierarchical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sim_ablation_test.dir/sim_ablation_test.cpp.o"
  "CMakeFiles/sim_ablation_test.dir/sim_ablation_test.cpp.o.d"
  "sim_ablation_test"
  "sim_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

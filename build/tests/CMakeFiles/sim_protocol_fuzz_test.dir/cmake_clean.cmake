file(REMOVE_RECURSE
  "CMakeFiles/sim_protocol_fuzz_test.dir/sim_protocol_fuzz_test.cpp.o"
  "CMakeFiles/sim_protocol_fuzz_test.dir/sim_protocol_fuzz_test.cpp.o.d"
  "sim_protocol_fuzz_test"
  "sim_protocol_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_protocol_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sim_protocol_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sim_directory_test.dir/sim_directory_test.cpp.o"
  "CMakeFiles/sim_directory_test.dir/sim_directory_test.cpp.o.d"
  "sim_directory_test"
  "sim_directory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

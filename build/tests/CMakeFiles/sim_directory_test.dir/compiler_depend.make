# Empty compiler generated dependencies file for sim_directory_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kernels_search_test.dir/kernels_search_test.cpp.o"
  "CMakeFiles/kernels_search_test.dir/kernels_search_test.cpp.o.d"
  "kernels_search_test"
  "kernels_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

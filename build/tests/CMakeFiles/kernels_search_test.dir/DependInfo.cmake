
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernels_search_test.cpp" "tests/CMakeFiles/kernels_search_test.dir/kernels_search_test.cpp.o" "gcc" "tests/CMakeFiles/kernels_search_test.dir/kernels_search_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crono_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crono_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/crono_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crono_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for kernels_search_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crono_graph.dir/adjacency_matrix.cpp.o"
  "CMakeFiles/crono_graph.dir/adjacency_matrix.cpp.o.d"
  "CMakeFiles/crono_graph.dir/builder.cpp.o"
  "CMakeFiles/crono_graph.dir/builder.cpp.o.d"
  "CMakeFiles/crono_graph.dir/generators.cpp.o"
  "CMakeFiles/crono_graph.dir/generators.cpp.o.d"
  "CMakeFiles/crono_graph.dir/graph.cpp.o"
  "CMakeFiles/crono_graph.dir/graph.cpp.o.d"
  "CMakeFiles/crono_graph.dir/io.cpp.o"
  "CMakeFiles/crono_graph.dir/io.cpp.o.d"
  "CMakeFiles/crono_graph.dir/stats.cpp.o"
  "CMakeFiles/crono_graph.dir/stats.cpp.o.d"
  "libcrono_graph.a"
  "libcrono_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crono_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

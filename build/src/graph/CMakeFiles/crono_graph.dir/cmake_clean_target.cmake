file(REMOVE_RECURSE
  "libcrono_graph.a"
)

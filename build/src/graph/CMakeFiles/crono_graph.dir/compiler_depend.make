# Empty compiler generated dependencies file for crono_graph.
# This may be replaced when dependencies are built.

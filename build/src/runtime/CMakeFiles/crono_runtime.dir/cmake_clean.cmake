file(REMOVE_RECURSE
  "CMakeFiles/crono_runtime.dir/executor.cpp.o"
  "CMakeFiles/crono_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/crono_runtime.dir/instrumentation.cpp.o"
  "CMakeFiles/crono_runtime.dir/instrumentation.cpp.o.d"
  "libcrono_runtime.a"
  "libcrono_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crono_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

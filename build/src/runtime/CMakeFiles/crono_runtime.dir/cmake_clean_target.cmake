file(REMOVE_RECURSE
  "libcrono_runtime.a"
)

# Empty compiler generated dependencies file for crono_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/crono_sim.dir/cache.cpp.o"
  "CMakeFiles/crono_sim.dir/cache.cpp.o.d"
  "CMakeFiles/crono_sim.dir/config.cpp.o"
  "CMakeFiles/crono_sim.dir/config.cpp.o.d"
  "CMakeFiles/crono_sim.dir/core_model.cpp.o"
  "CMakeFiles/crono_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/crono_sim.dir/dram.cpp.o"
  "CMakeFiles/crono_sim.dir/dram.cpp.o.d"
  "CMakeFiles/crono_sim.dir/energy.cpp.o"
  "CMakeFiles/crono_sim.dir/energy.cpp.o.d"
  "CMakeFiles/crono_sim.dir/fiber.cpp.o"
  "CMakeFiles/crono_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/crono_sim.dir/machine.cpp.o"
  "CMakeFiles/crono_sim.dir/machine.cpp.o.d"
  "CMakeFiles/crono_sim.dir/memory_system.cpp.o"
  "CMakeFiles/crono_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/crono_sim.dir/noc.cpp.o"
  "CMakeFiles/crono_sim.dir/noc.cpp.o.d"
  "CMakeFiles/crono_sim.dir/stats.cpp.o"
  "CMakeFiles/crono_sim.dir/stats.cpp.o.d"
  "libcrono_sim.a"
  "libcrono_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crono_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

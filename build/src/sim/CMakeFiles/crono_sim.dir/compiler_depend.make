# Empty compiler generated dependencies file for crono_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcrono_sim.a"
)

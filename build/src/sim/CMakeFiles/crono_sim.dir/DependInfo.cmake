
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/crono_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/crono_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/core_model.cpp" "src/sim/CMakeFiles/crono_sim.dir/core_model.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/core_model.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/crono_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/crono_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/sim/CMakeFiles/crono_sim.dir/fiber.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/fiber.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/crono_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/crono_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/noc.cpp" "src/sim/CMakeFiles/crono_sim.dir/noc.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/noc.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/crono_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/crono_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/crono_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

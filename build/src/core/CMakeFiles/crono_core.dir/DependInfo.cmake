
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/sequential.cpp" "src/core/CMakeFiles/crono_core.dir/sequential.cpp.o" "gcc" "src/core/CMakeFiles/crono_core.dir/sequential.cpp.o.d"
  "/root/repo/src/core/suite.cpp" "src/core/CMakeFiles/crono_core.dir/suite.cpp.o" "gcc" "src/core/CMakeFiles/crono_core.dir/suite.cpp.o.d"
  "/root/repo/src/core/workloads.cpp" "src/core/CMakeFiles/crono_core.dir/workloads.cpp.o" "gcc" "src/core/CMakeFiles/crono_core.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/crono_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/crono_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/crono_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

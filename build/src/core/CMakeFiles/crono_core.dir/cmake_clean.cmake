file(REMOVE_RECURSE
  "CMakeFiles/crono_core.dir/sequential.cpp.o"
  "CMakeFiles/crono_core.dir/sequential.cpp.o.d"
  "CMakeFiles/crono_core.dir/suite.cpp.o"
  "CMakeFiles/crono_core.dir/suite.cpp.o.d"
  "CMakeFiles/crono_core.dir/workloads.cpp.o"
  "CMakeFiles/crono_core.dir/workloads.cpp.o.d"
  "libcrono_core.a"
  "libcrono_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crono_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcrono_core.a"
)

# Empty compiler generated dependencies file for crono_core.
# This may be replaced when dependencies are built.

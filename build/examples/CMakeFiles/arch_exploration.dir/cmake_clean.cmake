file(REMOVE_RECURSE
  "CMakeFiles/arch_exploration.dir/arch_exploration.cpp.o"
  "CMakeFiles/arch_exploration.dir/arch_exploration.cpp.o.d"
  "arch_exploration"
  "arch_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

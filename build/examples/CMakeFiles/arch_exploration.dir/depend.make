# Empty dependencies file for arch_exploration.
# This may be replaced when dependencies are built.

/**
 * @file
 * Search kernel tests: BFS levels and parent trees, DFS traversal
 * invariants under branch parallelism, TSP optimality against
 * exhaustive search.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bfs.h"
#include "core/dfs.h"
#include "core/mcs.h"
#include "core/sequential.h"
#include "core/tsp.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using test::GraphThreads;

class BfsParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(BfsParamTest, LevelsMatchSequentialBfs)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::bfs(exec, threads, g, 0);
    const auto expect = core::seq::bfsLevels(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.level[v], expect[v]) << name << " v " << v;
    }
}

TEST_P(BfsParamTest, ParentEdgesDropOneLevel)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::bfs(exec, threads, g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (v == 0 || result.level[v] == core::kNoLevel) {
            continue;
        }
        const graph::VertexId p = result.parent[v];
        ASSERT_NE(p, graph::kNoVertex);
        EXPECT_TRUE(g.hasEdge(p, v)) << name << " v " << v;
        EXPECT_EQ(result.level[p] + 1, result.level[v]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, BfsParamTest,
    ::testing::Combine(::testing::Values("path", "ring", "star", "grid",
                                         "cliques", "sparse", "road",
                                         "social"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(Bfs, ReachedCountsComponent)
{
    const graph::Graph g = test::makeGraph("cliques");
    rt::NativeExecutor exec(4);
    const auto result = core::bfs(exec, 4, g, 0);
    EXPECT_EQ(result.reached, core::seq::reachableCount(g, 0));
    EXPECT_EQ(result.reached, 6u); // one clique of the chain
}

TEST(Bfs, TargetStopsTraversalEarly)
{
    const graph::Graph g = graph::generators::path(1000);
    rt::NativeExecutor exec(4);
    const auto with_target = core::bfs(exec, 4, g, 0, 10);
    EXPECT_TRUE(with_target.found_target);
    // The frontier past the target is never expanded.
    EXPECT_LT(with_target.reached, 1000u);
    EXPECT_EQ(with_target.level[10], 10u);
}

TEST(Bfs, MissingTargetTraversesComponent)
{
    const graph::Graph g = test::makeGraph("cliques");
    rt::NativeExecutor exec(2);
    const auto result = core::bfs(exec, 2, g, 0, 29); // other clique
    EXPECT_FALSE(result.found_target);
    EXPECT_EQ(result.reached, 6u);
}

TEST(Bfs, SimulatorMatchesNative)
{
    const graph::Graph g = test::makeGraph("social");
    sim::Machine machine(test::smallSimConfig());
    const auto sim_result = core::bfs(machine, 8, g, 0);
    const auto expect = core::seq::bfsLevels(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(sim_result.level[v], expect[v]);
    }
}

class DfsParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(DfsParamTest, VisitsComponentExactlyOnce)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::dfs(exec, threads, g, 0);
    // Every reachable vertex visited exactly once, no others.
    const auto levels = core::seq::bfsLevels(g, 0);
    std::uint64_t reachable = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (levels[v] != ~std::uint32_t{0}) {
            ++reachable;
            EXPECT_NE(result.order[v], core::kNotVisited)
                << name << " v " << v;
        } else {
            EXPECT_EQ(result.order[v], core::kNotVisited)
                << name << " v " << v;
        }
    }
    EXPECT_EQ(result.visited, reachable);
}

TEST_P(DfsParamTest, VisitOrderIsAPermutation)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::dfs(exec, threads, g, 0);
    std::vector<std::uint64_t> orders;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (result.order[v] != core::kNotVisited) {
            orders.push_back(result.order[v]);
        }
    }
    std::sort(orders.begin(), orders.end());
    for (std::size_t i = 0; i < orders.size(); ++i) {
        ASSERT_EQ(orders[i], i) << name;
    }
}

TEST_P(DfsParamTest, ParentEdgesExist)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::dfs(exec, threads, g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (v == 0 || result.parent[v] == graph::kNoVertex) {
            continue;
        }
        EXPECT_TRUE(g.hasEdge(result.parent[v], v)) << name << " " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, DfsParamTest,
    ::testing::Combine(::testing::Values("path", "ring", "star", "grid",
                                         "cliques", "sparse", "road"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(Dfs, FindsTarget)
{
    const graph::Graph g = test::makeGraph("grid");
    rt::NativeExecutor exec(4);
    const auto result = core::dfs(exec, 4, g, 0, 37);
    EXPECT_TRUE(result.found_target);
}

TEST(Dfs, TargetInOtherComponentNotFound)
{
    const graph::Graph g = test::makeGraph("cliques");
    rt::NativeExecutor exec(4);
    const auto result = core::dfs(exec, 4, g, 0, 29);
    EXPECT_FALSE(result.found_target);
}

TEST(Dfs, SimulatorTraversalIsValid)
{
    const graph::Graph g = test::makeGraph("sparse");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::dfs(machine, 8, g, 0);
    EXPECT_EQ(result.visited, core::seq::reachableCount(g, 0));
}

class TspParamTest : public ::testing::TestWithParam<int> {};

TEST_P(TspParamTest, FindsOptimalTourAcrossCitiesAndThreads)
{
    const int threads = GetParam();
    for (graph::VertexId n : {2u, 3u, 5u, 8u, 10u}) {
        const auto cities = graph::generators::tspCities(n, 70 + n);
        rt::NativeExecutor exec(threads);
        const auto result = core::tsp(exec, threads, cities);
        EXPECT_EQ(result.cost, core::seq::tspCost(cities))
            << n << " cities";
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, TspParamTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Tsp, TourIsValidPermutationWithMatchingCost)
{
    const auto cities = graph::generators::tspCities(9, 3);
    rt::NativeExecutor exec(4);
    const auto result = core::tsp(exec, 4, cities);
    ASSERT_EQ(result.tour.size(), 9u);
    EXPECT_EQ(result.tour[0], 0u);
    std::vector<graph::VertexId> sorted = result.tour;
    std::sort(sorted.begin(), sorted.end());
    for (graph::VertexId i = 0; i < 9; ++i) {
        EXPECT_EQ(sorted[i], i);
    }
    std::uint64_t cost = 0;
    for (std::size_t i = 0; i < result.tour.size(); ++i) {
        cost += cities.at(result.tour[i],
                          result.tour[(i + 1) % result.tour.size()]);
    }
    EXPECT_EQ(cost, result.cost);
}

TEST(Tsp, SimulatorFindsOptimum)
{
    const auto cities = graph::generators::tspCities(8, 5);
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::tsp(machine, 8, cities);
    EXPECT_EQ(result.cost, core::seq::tspCost(cities));
}

/** Induced-subgraph consistency of an MCS mapping against both input
 *  graphs: labels equal pairwise, adjacency patterns identical. */
void
checkMcsMapping(const graph::LabeledMatrix& pattern,
                const graph::LabeledMatrix& target,
                const core::McsResult& res)
{
    ASSERT_EQ(res.mapping.size(), res.size);
    const auto adjacent = [](const graph::LabeledMatrix& g,
                             graph::VertexId a, graph::VertexId b) {
        return g.adj.at(a, b) != graph::AdjacencyMatrix::kInfWeight;
    };
    for (std::size_t i = 0; i < res.mapping.size(); ++i) {
        const auto [v, w] = res.mapping[i];
        ASSERT_LT(v, pattern.adj.numVertices());
        ASSERT_LT(w, target.adj.numVertices());
        EXPECT_EQ(pattern.labels[v], target.labels[w]);
        for (std::size_t j = i + 1; j < res.mapping.size(); ++j) {
            const auto [v2, w2] = res.mapping[j];
            EXPECT_NE(v, v2);
            EXPECT_NE(w, w2);
            EXPECT_EQ(adjacent(pattern, v, v2), adjacent(target, w, w2))
                << "pairs (" << v << "," << w << ") (" << v2 << ","
                << w2 << ")";
        }
    }
}

class McsParamTest : public ::testing::TestWithParam<int> {};

TEST_P(McsParamTest, MatchesBruteForceOracleOnRandomLabeledGraphs)
{
    const int threads = GetParam();
    rt::NativeExecutor exec(threads);
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const graph::VertexId np = 3 + seed % 5;  // 3..7
        const graph::VertexId nt = 4 + seed % 5;  // 4..8
        const std::uint32_t labels = 1 + seed % 3; // 1..3
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto pattern = graph::generators::labeledGraph(
            np, np * 2, labels, seed * 7 + 1);
        const auto target = graph::generators::labeledGraph(
            nt, nt * 2, labels, seed * 7 + 2);
        const auto res = core::mcs(exec, threads, pattern, target);
        EXPECT_EQ(res.size, core::seq::mcsSize(pattern, target));
        checkMcsMapping(pattern, target, res);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, McsParamTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Mcs, IdenticalGraphsMapCompletely)
{
    const auto g = graph::generators::labeledGraph(7, 14, 2, 9);
    rt::NativeExecutor exec(4);
    const auto res = core::mcs(exec, 4, g, g);
    EXPECT_EQ(res.size, 7u);
    checkMcsMapping(g, g, res);
}

TEST(Mcs, DisjointLabelsShareNothing)
{
    graph::LabeledMatrix pattern(3);
    graph::LabeledMatrix target(3);
    for (graph::VertexId v = 0; v < 3; ++v) {
        pattern.labels[v] = 0;
        target.labels[v] = 1;
    }
    rt::NativeExecutor exec(2);
    const auto res = core::mcs(exec, 2, pattern, target);
    EXPECT_EQ(res.size, 0u);
    EXPECT_TRUE(res.mapping.empty());
}

TEST(Mcs, TriangleFoundInsideLargerGraph)
{
    // Pattern: a labeled triangle. Target: the same triangle plus a
    // pendant path; all labels equal, so structure decides.
    graph::LabeledMatrix pattern(3);
    for (graph::VertexId v = 0; v < 3; ++v) {
        pattern.adj.set(v, (v + 1) % 3, 1);
        pattern.adj.set((v + 1) % 3, v, 1);
    }
    graph::LabeledMatrix target(6);
    for (graph::VertexId v = 0; v < 3; ++v) {
        target.adj.set(v, (v + 1) % 3, 1);
        target.adj.set((v + 1) % 3, v, 1);
    }
    target.adj.set(3, 4, 1);
    target.adj.set(4, 3, 1);
    target.adj.set(4, 5, 1);
    target.adj.set(5, 4, 1);
    rt::NativeExecutor exec(4);
    const auto res = core::mcs(exec, 4, pattern, target);
    EXPECT_EQ(res.size, 3u);
    checkMcsMapping(pattern, target, res);
}

TEST(Mcs, SimulatorMatchesOracle)
{
    const auto pattern = graph::generators::labeledGraph(6, 10, 2, 12);
    const auto target = graph::generators::labeledGraph(7, 14, 2, 13);
    sim::Machine machine(test::smallSimConfig());
    const auto res = core::mcs(machine, 8, pattern, target);
    EXPECT_EQ(res.size, core::seq::mcsSize(pattern, target));
    checkMcsMapping(pattern, target, res);
}

} // namespace
} // namespace crono

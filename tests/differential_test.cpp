/**
 * @file
 * Randomized differential harness for the reordering subsystem
 * (ISSUE 5): for a sweep of seeds, generate road / uniform / social
 * graphs, relabel them under every Reordering (blocked layout
 * attached, so the bin-major pull and gather paths execute), run all
 * ten kernels under their FrontierMode / PageRankMode sweeps, and
 * check the results are permutation-invariant against the
 * core::sequential oracles computed on the ORIGINAL graph:
 *
 *  - exact equality after inverse-mapping for distances, levels,
 *    component labels (canonicalized to min original member),
 *    betweenness counts, APSP entries and scalar invariants
 *    (triangle count, TSP cost, MCS size);
 *  - ASSERT_NEAR for PageRank (relabeling permutes the summation
 *    order of a floating-point reduction);
 *  - validity predicates for tie-broken quantities (BFS/DFS parent
 *    trees, community partitions) that may legitimately differ.
 *
 * Seed counts come from CRONO_DIFF_SEEDS / CRONO_DIFF_SIM_SEEDS so CI
 * can run a reduced sweep under TSan. Simulator suites carry "Sim" in
 * their name for the TSan filter (fibers and TSan do not mix).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/sequential.h"
#include "core/suite.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "runtime/executor.h"
#include "serve/query.h"
#include "serve/server.h"
#include "serve/store.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

namespace gen = graph::generators;
using graph::Reordering;
using graph::VertexId;
using graph::VertexPermutation;
using rt::FrontierMode;

const FrontierMode kAllModes[] = {
    FrontierMode::kFlagScan, FrontierMode::kSparse,
    FrontierMode::kAdaptive, FrontierMode::kPull};

int
envInt(const char* name, int fallback)
{
    const char* const s = std::getenv(name);
    if (s == nullptr || *s == '\0') {
        return fallback;
    }
    const int v = std::atoi(s);
    return v > 0 ? v : fallback;
}

int
nativeSeeds()
{
    return envInt("CRONO_DIFF_SEEDS", 8);
}

int
simSeeds()
{
    return envInt("CRONO_DIFF_SIM_SEEDS", 2);
}

const std::string kFamilies[] = {"road", "uniform", "social"};

graph::Graph
diffGraph(const std::string& family, std::uint64_t seed, bool small)
{
    if (family == "road") {
        const VertexId side = small ? 12 : 16 + seed % 5;
        return gen::roadNetwork(side, side, seed);
    }
    if (family == "uniform") {
        const VertexId n =
            small ? 200 : static_cast<VertexId>(250 + 40 * (seed % 5));
        return gen::uniformRandom(n, 5 * n, 32, seed);
    }
    if (family == "social") {
        return gen::socialNetwork(small ? 8 : 9, 6, seed + 1);
    }
    ADD_FAILURE() << "unknown family " << family;
    return gen::path(2);
}

VertexPermutation
matrixPermutation(VertexId n, std::uint64_t seed)
{
    // Deterministic label-shuffle for the dense-matrix kernels, which
    // have no degree structure worth ordering by: a fixed multiplier
    // walk hits every id exactly once when stride is coprime with n.
    AlignedVector<VertexId> order(n);
    VertexId stride = static_cast<VertexId>(seed % n);
    while (std::gcd(static_cast<VertexId>(n), ++stride) != 1) {
    }
    for (VertexId v = 0; v < n; ++v) {
        order[v] = static_cast<VertexId>(
            (static_cast<std::uint64_t>(v) * stride + seed) % n);
    }
    return VertexPermutation(std::move(order));
}

/** parent[] must encode a valid BFS tree for the given levels. */
void
checkBfsTree(const graph::Graph& g, const core::BfsResult& res,
             VertexId source)
{
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (res.level[v] == core::kNoLevel || v == source) {
            continue;
        }
        const VertexId p = res.parent[v];
        ASSERT_NE(p, graph::kNoVertex) << "v " << v;
        ASSERT_EQ(res.level[p] + 1, res.level[v]) << "v " << v;
        bool adjacent = false;
        for (const VertexId u : g.neighbors(p)) {
            if (u == v) {
                adjacent = true;
                break;
            }
        }
        ASSERT_TRUE(adjacent) << "parent " << p << " of " << v;
    }
}

/** Component labels canonicalized to the min original member id. */
AlignedVector<VertexId>
canonicalComponents(const AlignedVector<VertexId>& label_new,
                    const VertexPermutation& perm)
{
    const AlignedVector<VertexId> label_old = perm.valuesToOld(
        std::span<const VertexId>(label_new.data(), label_new.size()));
    std::map<VertexId, VertexId> repr;
    for (VertexId v = 0; v < label_old.size(); ++v) {
        auto [it, fresh] = repr.emplace(label_old[v], v);
        if (!fresh && v < it->second) {
            it->second = v;
        }
    }
    AlignedVector<VertexId> canon(label_old.size());
    for (VertexId v = 0; v < label_old.size(); ++v) {
        canon[v] = repr.at(label_old[v]);
    }
    return canon;
}

template <class T>
std::span<const T>
asSpan(const AlignedVector<T>& v)
{
    return {v.data(), v.size()};
}

// ----------------------------------------------- per-kernel checkers

template <class Exec>
void
checkSssp(Exec& exec, int threads, const graph::Graph& g,
          const graph::ReorderedGraph& rg,
          std::span<const FrontierMode> modes)
{
    const std::vector<graph::Dist> oracle = core::seq::sssp(g, 0);
    for (const FrontierMode mode : modes) {
        SCOPED_TRACE(rt::frontierModeName(mode));
        const auto res = core::sssp(exec, threads, rg.graph,
                                    rg.perm.toNew(0), nullptr, mode);
        const auto dist = rg.perm.valuesToOld(asSpan(res.dist));
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(dist[v], oracle[v]) << "v " << v;
        }
    }
    // Delta-stepping: the auto-tuned width plus the two degenerate
    // corners — delta=1 (everything heavy, near-Dijkstra bucket
    // order) and a width past the weight range (everything light,
    // Bellman-Ford-style single bucket).
    for (const graph::Dist delta :
         {graph::Dist{0}, graph::Dist{1}, graph::Dist{1} << 20}) {
        SCOPED_TRACE("delta=" + std::to_string(delta));
        const auto res = core::deltaSteppingSssp(
            exec, threads, rg.graph, rg.perm.toNew(0), nullptr, delta);
        const auto dist = rg.perm.valuesToOld(asSpan(res.dist));
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(dist[v], oracle[v]) << "v " << v;
        }
    }
}

template <class Exec>
void
checkBfs(Exec& exec, int threads, const graph::Graph& g,
         const graph::ReorderedGraph& rg,
         std::span<const FrontierMode> modes)
{
    const std::vector<std::uint32_t> oracle = core::seq::bfsLevels(g, 0);
    for (const FrontierMode mode : modes) {
        SCOPED_TRACE(rt::frontierModeName(mode));
        const auto res =
            core::bfs(exec, threads, rg.graph, rg.perm.toNew(0),
                      graph::kNoVertex, nullptr, mode);
        const auto level = rg.perm.valuesToOld(asSpan(res.level));
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(level[v], oracle[v]) << "v " << v;
        }
        // Parents are tie-broken (push races, pull takes first
        // in-front, blocked pull folds bin-major): validity predicate
        // in the relabeled space instead of equality.
        checkBfsTree(rg.graph, res, rg.perm.toNew(0));
    }
}

template <class Exec>
void
checkDfs(Exec& exec, int threads, const graph::Graph& g,
         const graph::ReorderedGraph& rg)
{
    const std::uint64_t reachable = core::seq::reachableCount(g, 0);
    const VertexId src = rg.perm.toNew(0);
    const auto res = core::dfs(exec, threads, rg.graph, src);
    EXPECT_EQ(res.visited, reachable);
    for (VertexId v = 0; v < rg.graph.numVertices(); ++v) {
        if (res.order[v] == core::kNotVisited) {
            ASSERT_EQ(res.parent[v], graph::kNoVertex) << "v " << v;
            continue;
        }
        if (v == src) {
            continue;
        }
        // The discovery tree is tie-broken by branch scheduling:
        // validity predicate — the parent was visited first and is
        // adjacent.
        const VertexId p = res.parent[v];
        ASSERT_NE(p, graph::kNoVertex) << "v " << v;
        ASSERT_NE(res.order[p], core::kNotVisited) << "v " << v;
        ASSERT_LT(res.order[p], res.order[v]) << "v " << v;
        bool adjacent = false;
        for (const VertexId u : rg.graph.neighbors(p)) {
            if (u == v) {
                adjacent = true;
                break;
            }
        }
        ASSERT_TRUE(adjacent) << "parent " << p << " of " << v;
    }
}

template <class Exec>
void
checkConnComp(Exec& exec, int threads, const graph::Graph& g,
              const graph::ReorderedGraph& rg,
              std::span<const FrontierMode> modes)
{
    const std::vector<VertexId> oracle = core::seq::componentLabels(g);
    for (const FrontierMode mode : modes) {
        SCOPED_TRACE(rt::frontierModeName(mode));
        const auto res = core::connectedComponents(exec, threads,
                                                   rg.graph, nullptr, mode);
        // The parallel kernel converges to min NEW id per component,
        // which maps back to an arbitrary member: canonicalize both
        // sides to the min ORIGINAL member before comparing.
        const auto canon = canonicalComponents(res.label, rg.perm);
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(canon[v], oracle[v]) << "v " << v;
        }
    }
}

template <class Exec>
void
checkTriangles(Exec& exec, int threads, const graph::Graph& g,
               const graph::ReorderedGraph& rg)
{
    const auto res = core::triangleCount(exec, threads, rg.graph);
    EXPECT_EQ(res.total, core::seq::triangleCount(g));
}

template <class Exec>
void
checkPageRank(Exec& exec, int threads, const graph::Graph& g,
              const graph::ReorderedGraph& rg)
{
    const unsigned iters = 5;
    const std::vector<double> oracle =
        core::seq::pageRank(g, iters, 0.15);
    for (const core::PageRankMode mode :
         {core::PageRankMode::kScatter, core::PageRankMode::kGather}) {
        SCOPED_TRACE(mode == core::PageRankMode::kGather ? "gather"
                                                         : "scatter");
        const auto res = core::pageRank(exec, threads, rg.graph, iters,
                                        0.15, nullptr, mode);
        const auto rank = rg.perm.valuesToOld(asSpan(res.rank));
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            // Relabeling (and the bin-major blocked gather) permute
            // the FP summation order; exact equality is not defined.
            ASSERT_NEAR(rank[v], oracle[v], 1e-9) << "v " << v;
        }
    }
}

template <class Exec>
void
checkCommunity(Exec& exec, int threads, const graph::Graph& g,
               const graph::ReorderedGraph& rg)
{
    const auto res = core::communityDetection(exec, threads, rg.graph, 8);
    // The partition is heuristic and may legitimately differ between
    // orderings; the validity predicate is structural: labels form a
    // partition whose modularity — a labeling-invariant functional —
    // reproduces the kernel's reported value on the ORIGINAL graph.
    const auto comm_old = rg.perm.valuesToOld(asSpan(res.community));
    EXPECT_NEAR(core::communityModularity(g, comm_old), res.modularity,
                1e-9);
    EXPECT_GE(res.modularity, -0.5);
    EXPECT_LE(res.modularity, 1.0);
}

template <class Exec>
void
checkApsp(Exec& exec, int threads, const graph::AdjacencyMatrix& m,
          const VertexPermutation& perm,
          std::span<const FrontierMode> modes)
{
    const std::vector<graph::Dist> oracle = core::seq::apsp(m);
    const graph::AdjacencyMatrix pm = graph::permuteMatrix(m, perm);
    const VertexId n = m.numVertices();
    for (const FrontierMode mode : modes) {
        SCOPED_TRACE(rt::frontierModeName(mode));
        const auto res = core::apsp(exec, threads, pm, nullptr, mode);
        for (VertexId a = 0; a < n; ++a) {
            for (VertexId b = 0; b < n; ++b) {
                ASSERT_EQ(res.at(perm.toNew(a), perm.toNew(b)),
                          oracle[static_cast<std::size_t>(a) * n + b])
                    << a << "->" << b;
            }
        }
    }
}

template <class Exec>
void
checkBetweenness(Exec& exec, int threads,
                 const graph::AdjacencyMatrix& m,
                 const VertexPermutation& perm)
{
    const std::vector<std::uint64_t> oracle = core::seq::betweenness(m);
    const graph::AdjacencyMatrix pm = graph::permuteMatrix(m, perm);
    const auto res = core::betweenness(exec, threads, pm);
    const auto counts = perm.valuesToOld(asSpan(res.centrality));
    for (VertexId v = 0; v < m.numVertices(); ++v) {
        ASSERT_EQ(counts[v], oracle[v]) << "v " << v;
    }
}

template <class Exec>
void
checkTsp(Exec& exec, int threads, const graph::AdjacencyMatrix& cities,
         const VertexPermutation& perm)
{
    const std::uint64_t oracle = core::seq::tspCost(cities);
    const graph::AdjacencyMatrix pc = graph::permuteMatrix(cities, perm);
    const auto res = core::tsp(exec, threads, pc);
    // The optimal tour cost is invariant under city relabeling; the
    // tour itself is tie-broken, so only the cost is compared.
    EXPECT_EQ(res.cost, oracle);
}

graph::LabeledMatrix
permuteLabeled(const graph::LabeledMatrix& g,
               const VertexPermutation& perm)
{
    graph::LabeledMatrix out(g.adj.numVertices());
    out.adj = graph::permuteMatrix(g.adj, perm);
    for (VertexId v = 0; v < g.adj.numVertices(); ++v) {
        out.labels[perm.toNew(v)] = g.labels[v];
    }
    return out;
}

template <class Exec>
void
checkMcs(Exec& exec, int threads, const graph::LabeledMatrix& pattern,
         const graph::LabeledMatrix& target,
         const VertexPermutation& pperm, const VertexPermutation& tperm)
{
    const std::uint64_t oracle = core::seq::mcsSize(pattern, target);
    const graph::LabeledMatrix pp = permuteLabeled(pattern, pperm);
    const graph::LabeledMatrix pt = permuteLabeled(target, tperm);
    // The maximum common subgraph size is invariant under relabeling
    // of either side; the mapping itself is tie-broken. Run both the
    // default donation config and deterministic replay.
    const auto res = core::mcs(exec, threads, pp, pt);
    EXPECT_EQ(res.size, oracle);
    rt::bnb::SearchConfig replay;
    replay.deterministic = true;
    const auto rep =
        core::mcs(exec, threads, pp, pt, nullptr, replay);
    EXPECT_EQ(rep.size, oracle);
}

// ----------------------------------------------------- native sweeps

class Differential : public ::testing::TestWithParam<std::string> {
  protected:
    static constexpr int kThreads = 4;

    template <class Fn>
    void
    sweep(Fn&& fn)
    {
        rt::NativeExecutor exec(kThreads);
        for (int seed = 0; seed < nativeSeeds(); ++seed) {
            SCOPED_TRACE("seed " + std::to_string(seed));
            const graph::Graph g = diffGraph(
                GetParam(), static_cast<std::uint64_t>(seed), false);
            for (const Reordering r : graph::allReorderings()) {
                SCOPED_TRACE(graph::reorderingName(r));
                const graph::ReorderedGraph rg =
                    graph::reorderGraph(g, r, /*blocked=*/true);
                fn(exec, g, rg);
            }
        }
    }
};

TEST_P(Differential, Sssp)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkSssp(exec, kThreads, g, rg, kAllModes);
    });
}

TEST_P(Differential, Bfs)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkBfs(exec, kThreads, g, rg, kAllModes);
    });
}

TEST_P(Differential, Dfs)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkDfs(exec, kThreads, g, rg);
    });
}

TEST_P(Differential, ConnComp)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkConnComp(exec, kThreads, g, rg, kAllModes);
    });
}

TEST_P(Differential, Triangles)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkTriangles(exec, kThreads, g, rg);
    });
}

TEST_P(Differential, PageRank)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkPageRank(exec, kThreads, g, rg);
    });
}

TEST_P(Differential, Community)
{
    sweep([&](rt::NativeExecutor& exec, const graph::Graph& g,
              const graph::ReorderedGraph& rg) {
        checkCommunity(exec, kThreads, g, rg);
    });
}

INSTANTIATE_TEST_SUITE_P(Families, Differential,
                         ::testing::ValuesIn(kFamilies));

TEST(DifferentialMatrix, ApspBetweennessTspMcs)
{
    constexpr int kThreads = 4;
    rt::NativeExecutor exec(kThreads);
    for (int seed = 0; seed < nativeSeeds(); ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto s = static_cast<std::uint64_t>(seed);
        const graph::AdjacencyMatrix m(
            gen::uniformRandom(20, 140, 64, s + 3));
        const graph::AdjacencyMatrix cities = gen::tspCities(7, s + 4);
        const graph::LabeledMatrix pattern =
            gen::labeledGraph(6, 12, 2, s + 5);
        const graph::LabeledMatrix target =
            gen::labeledGraph(7, 14, 2, s + 6);
        // >= 3 "orderings" per seed: identity plus two label shuffles
        // (dense inputs have no degree structure to order by).
        for (const std::uint64_t pseed : {std::uint64_t{0}, s * 2 + 1,
                                          s * 2 + 2}) {
            SCOPED_TRACE("perm " + std::to_string(pseed));
            const VertexPermutation perm =
                pseed == 0 ? VertexPermutation::identity(20)
                           : matrixPermutation(20, pseed);
            const VertexPermutation cperm =
                pseed == 0 ? VertexPermutation::identity(7)
                           : matrixPermutation(7, pseed);
            const VertexPermutation mperm =
                pseed == 0 ? VertexPermutation::identity(6)
                           : matrixPermutation(6, pseed);
            checkApsp(exec, kThreads, m, perm, kAllModes);
            checkBetweenness(exec, kThreads, m, perm);
            checkTsp(exec, kThreads, cities, cperm);
            checkMcs(exec, kThreads, pattern, target, mperm, cperm);
        }
    }
}

// -------------------------------------------------------- sim sweeps

/**
 * The same differential properties under the simulated Ctx, on
 * catalog-size inputs (the simulator models every shared access):
 * proof that the blocked/reordered paths' ctx.read/write discipline
 * did not change any algorithm. Reduced ordering set and seed count;
 * suite named "Sim" for the TSan filter.
 */
class DifferentialSim : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialSim, AllCsrKernels)
{
    constexpr int kThreads = 4;
    const Reordering kOrderings[] = {Reordering::kNone,
                                     Reordering::kDegreeSort,
                                     Reordering::kRcm};
    const FrontierMode kSimModes[] = {FrontierMode::kFlagScan,
                                      FrontierMode::kPull};
    sim::Machine machine(test::smallSimConfig());
    for (int seed = 0; seed < simSeeds(); ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const graph::Graph g = diffGraph(
            GetParam(), static_cast<std::uint64_t>(seed), true);
        for (const Reordering r : kOrderings) {
            SCOPED_TRACE(graph::reorderingName(r));
            const graph::ReorderedGraph rg =
                graph::reorderGraph(g, r, /*blocked=*/true);
            checkSssp(machine, kThreads, g, rg,
                      std::span<const FrontierMode>(kSimModes, 1));
            checkBfs(machine, kThreads, g, rg, kSimModes);
            checkDfs(machine, kThreads, g, rg);
            checkConnComp(machine, kThreads, g, rg, kSimModes);
            checkTriangles(machine, kThreads, g, rg);
            checkPageRank(machine, kThreads, g, rg);
            checkCommunity(machine, kThreads, g, rg);
        }
    }
}

TEST(DifferentialSimMatrix, ApspBetweennessTspMcs)
{
    constexpr int kThreads = 4;
    sim::Machine machine(test::smallSimConfig());
    for (int seed = 0; seed < simSeeds(); ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto s = static_cast<std::uint64_t>(seed);
        const graph::AdjacencyMatrix m(
            gen::uniformRandom(16, 96, 64, s + 3));
        const graph::AdjacencyMatrix cities = gen::tspCities(6, s + 4);
        const graph::LabeledMatrix pattern =
            gen::labeledGraph(5, 9, 2, s + 5);
        const graph::LabeledMatrix target =
            gen::labeledGraph(6, 11, 2, s + 6);
        for (const std::uint64_t pseed :
             {std::uint64_t{0}, s * 2 + 1, s * 2 + 2}) {
            SCOPED_TRACE("perm " + std::to_string(pseed));
            const VertexPermutation perm =
                pseed == 0 ? VertexPermutation::identity(16)
                           : matrixPermutation(16, pseed);
            const VertexPermutation cperm =
                pseed == 0 ? VertexPermutation::identity(6)
                           : matrixPermutation(6, pseed);
            const VertexPermutation mperm =
                pseed == 0 ? VertexPermutation::identity(5)
                           : matrixPermutation(5, pseed);
            checkApsp(machine, kThreads, m, perm,
                      std::span<const FrontierMode>(kAllModes, 1));
            checkBetweenness(machine, kThreads, m, perm);
            checkTsp(machine, kThreads, cities, cperm);
            checkMcs(machine, kThreads, pattern, target, mperm, cperm);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Families, DifferentialSim,
                         ::testing::ValuesIn(kFamilies));

// ------------------------------------------------ serve oracle sweeps

/**
 * The external-space graph a serve epoch must equal: the original
 * edges plus every accepted ingest edge. Self-loops are dropped on
 * both paths (GraphBuilder::addEdge and GraphStore::ingestBatch),
 * parallel edges are kept on both (DedupPolicy::keepAll in the store's
 * compaction), so this reconstruction is exact, not approximate.
 */
graph::Graph
epochOracleGraph(const graph::Graph& original,
                 std::span<const graph::Edge> ingested)
{
    graph::GraphBuilder b(original.numVertices(), /*undirected=*/true);
    for (VertexId v = 0; v < original.numVertices(); ++v) {
        const std::span<const VertexId> nbr = original.neighbors(v);
        const std::span<const graph::Weight> w = original.weights(v);
        for (std::size_t i = 0; i < nbr.size(); ++i) {
            if (v < nbr[i]) { // each undirected edge once; re-mirrored
                b.addEdge(v, nbr[i], w[i]);
            }
        }
    }
    for (const graph::Edge& e : ingested) {
        if (e.src != e.dst) {
            b.addEdge(e.src, e.dst, e.weight);
        }
    }
    return std::move(b).build(graph::GraphBuilder::DedupPolicy::keepAll);
}

/** Top-k degree order with the wire tie-break (score desc, id asc). */
std::vector<std::pair<std::uint64_t, VertexId>>
oracleTopDegree(const graph::Graph& g, std::uint32_t k)
{
    std::vector<std::pair<std::uint64_t, VertexId>> order;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        order.emplace_back(g.degree(v), v);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });
    order.resize(std::min<std::size_t>(order.size(), k));
    return order;
}

/**
 * Every wire answer at one epoch must match the core::seq oracles run
 * offline on that epoch's external-space graph — the serve analogue of
 * the kernel sweeps above, proving the delta overlay, materialization,
 * permutation plumbing and response encoding introduced no drift.
 */
void
checkServeOracle(serve::Client& client, const graph::Graph& oracle_g,
                 unsigned pr_iters)
{
    const VertexId n = oracle_g.numVertices();
    const VertexId src = 1;
    const std::vector<graph::Dist> sssp =
        core::seq::sssp(oracle_g, src);
    const std::vector<std::uint32_t> bfs =
        core::seq::bfsLevels(oracle_g, src);
    const std::vector<VertexId> comp =
        core::seq::componentLabels(oracle_g);
    const std::vector<double> rank =
        core::seq::pageRank(oracle_g, pr_iters, 0.15);

    Rng pick(2024);
    for (int i = 0; i < 16; ++i) {
        const auto t =
            static_cast<VertexId>(pick.nextBelow(n));
        serve::Request req;
        req.op = serve::Op::kSsspDist;
        req.source = src;
        req.target = t;
        serve::Response r = client.call(req);
        ASSERT_EQ(r.status, serve::Status::kOk);
        ASSERT_EQ(r.values.size(), 1u);
        const std::uint64_t want = sssp[t] == graph::kInfDist
                                       ? serve::kNoValue
                                       : sssp[t];
        ASSERT_EQ(r.values[0], want) << "sssp target " << t;

        req = {};
        req.op = serve::Op::kBfsDist;
        req.source = src;
        req.target = t;
        r = client.call(req);
        ASSERT_EQ(r.status, serve::Status::kOk);
        const std::uint64_t want_bfs =
            bfs[t] == core::kNoLevel ? serve::kNoValue : bfs[t];
        ASSERT_EQ(r.values.at(0), want_bfs) << "bfs target " << t;

        req = {};
        req.op = serve::Op::kComponent;
        req.source = t;
        r = client.call(req);
        ASSERT_EQ(r.status, serve::Status::kOk);
        ASSERT_EQ(r.values.at(0), comp[t]) << "component of " << t;

        req = {};
        req.op = serve::Op::kRankScore;
        req.source = t;
        r = client.call(req);
        ASSERT_EQ(r.status, serve::Status::kOk);
        const double got =
            std::bit_cast<double>(r.values.at(0));
        // Reordering permutes the FP summation; same bound as the
        // kernel-level PageRank differential above.
        ASSERT_NEAR(got, rank[t], 1e-9) << "rank of " << t;
    }

    // Batch lookup: one wire round trip, every slot oracle-checked.
    serve::Request batch;
    batch.op = serve::Op::kSsspBatch;
    batch.source = src;
    for (int i = 0; i < 24; ++i) {
        batch.targets.push_back(
            static_cast<VertexId>(pick.nextBelow(n)));
    }
    const std::vector<VertexId> targets = batch.targets;
    const serve::Response br = client.call(std::move(batch));
    ASSERT_EQ(br.status, serve::Status::kOk);
    ASSERT_EQ(br.values.size(), targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
        const graph::Dist d = sssp[targets[i]];
        ASSERT_EQ(br.values[i],
                  d == graph::kInfDist ? serve::kNoValue : d)
            << "batch slot " << i;
    }

    // Top-k degree centrality: scores AND canonical id order.
    serve::Request topk;
    topk.op = serve::Op::kTopDegree;
    topk.k = 12;
    const serve::Response tr = client.call(topk);
    ASSERT_EQ(tr.status, serve::Status::kOk);
    const auto want_top = oracleTopDegree(oracle_g, topk.k);
    ASSERT_EQ(tr.vertices.size(), want_top.size());
    for (std::size_t i = 0; i < want_top.size(); ++i) {
        EXPECT_EQ(tr.values[i], want_top[i].first) << "rank " << i;
        EXPECT_EQ(tr.vertices[i], want_top[i].second) << "rank " << i;
    }
}

TEST(DifferentialServe, WireAnswersMatchSequentialOracles)
{
    constexpr unsigned kPrIters = 5;
    rt::NativeExecutor exec(2);

    // The deterministic ingest batch applied mid-test (external ids;
    // includes a self-loop both paths must drop).
    std::vector<graph::Edge> batch;
    Rng rng(123);
    const graph::Graph original = gen::socialNetwork(8, 6, 11);
    const VertexId n = original.numVertices();
    batch.push_back({3, 3, 9}); // self-loop: dropped everywhere
    for (int i = 0; i < 24; ++i) {
        batch.push_back(
            {static_cast<VertexId>(rng.nextBelow(n)),
             static_cast<VertexId>(rng.nextBelow(n)),
             static_cast<graph::Weight>(1 + rng.nextBelow(32))});
    }
    const graph::Graph after = epochOracleGraph(original, batch);

    for (const Reordering r : graph::allReorderings()) {
        SCOPED_TRACE(graph::reorderingName(r));
        for (const int shards : {1, 3, 8}) {
            SCOPED_TRACE("shards " + std::to_string(shards));
            serve::StoreConfig cfg;
            cfg.num_shards = shards;
            cfg.reordering = r;
            // Same generator call, same seed: the store serves an
            // identical copy of `original`.
            serve::GraphStore store(gen::socialNetwork(8, 6, 11), cfg);
            serve::ServerConfig scfg;
            scfg.num_workers = 2;
            scfg.query.nthreads = 2;
            scfg.query.pagerank_iterations = kPrIters;
            serve::Server server(store, exec, scfg);
            server.start();
            serve::Client client(server);

            checkServeOracle(client, original, kPrIters);

            // Ingest over the wire, re-check against the offline
            // reconstruction of the grown epoch...
            serve::Request ingest;
            ingest.op = serve::Op::kIngest;
            ingest.edges = batch;
            const serve::Response ir = client.call(std::move(ingest));
            ASSERT_EQ(ir.status, serve::Status::kOk);
            checkServeOracle(client, after, kPrIters);

            // ...and once more after a forced compaction rebuilt the
            // base under this reordering: same answers exactly.
            serve::Request compact;
            compact.op = serve::Op::kCompact;
            ASSERT_EQ(client.call(compact).status, serve::Status::kOk);
            checkServeOracle(client, after, kPrIters);

            server.stop();
        }
    }
}

} // namespace
} // namespace crono

/**
 * @file
 * Direct unit tests for the runtime instrumentation primitives:
 * rt::variability edge cases and the ActiveTracker's stride-doubling
 * compaction (satellites of the telemetry PR — these were previously
 * only exercised indirectly through kernel runs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "runtime/instrumentation.h"

namespace {

using crono::rt::ActiveTracker;
using crono::rt::variability;

// ------------------------------------------------------ variability

TEST(Variability, EmptyInputIsZero)
{
    EXPECT_DOUBLE_EQ(variability({}), 0.0);
}

TEST(Variability, AllZeroCountsAreZero)
{
    EXPECT_DOUBLE_EQ(variability({0, 0, 0}), 0.0);
}

TEST(Variability, SingleElementIsZero)
{
    EXPECT_DOUBLE_EQ(variability({0}), 0.0);
    EXPECT_DOUBLE_EQ(variability({12345}), 0.0);
}

TEST(Variability, EqualCountsAreZero)
{
    EXPECT_DOUBLE_EQ(variability({7, 7, 7, 7}), 0.0);
}

TEST(Variability, IdleThreadGivesMaximum)
{
    // One thread did nothing: (max - 0) / max = 1.
    EXPECT_DOUBLE_EQ(variability({0, 100}), 1.0);
}

TEST(Variability, MatchesEquationTwo)
{
    EXPECT_DOUBLE_EQ(variability({50, 100}), 0.5);
    EXPECT_DOUBLE_EQ(variability({100, 80, 60}), 0.4);
}

// ---------------------------------------------------- ActiveTracker

TEST(ActiveTracker, RecordsEverySampleBeforeCompaction)
{
    ActiveTracker tracker(16, 1);
    for (int i = 0; i < 10; ++i) {
        tracker.add(1);
    }
    EXPECT_EQ(tracker.events(), 10u);
    const auto samples = tracker.samples();
    ASSERT_EQ(samples.size(), 10u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(samples[i].event, i);
        EXPECT_EQ(samples[i].active, static_cast<std::int64_t>(i + 1));
    }
}

TEST(ActiveTracker, StrideDoublingKeepsUniformSpacing)
{
    // 16-slot tracker, stride 1, 50 events. The buffer fills at event
    // 15; event 16 triggers compaction to every-other sample with
    // stride 2; event 32 compacts again to stride 4. The surviving
    // samples are exactly the multiples of the final stride.
    ActiveTracker tracker(16, 1);
    for (int i = 0; i < 50; ++i) {
        tracker.add(1);
    }
    const auto samples = tracker.samples();
    ASSERT_EQ(samples.size(), 13u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(samples[i].event, 4 * i);
        // add(1) per event: the recorded count is event + 1.
        EXPECT_EQ(samples[i].active,
                  static_cast<std::int64_t>(4 * i + 1));
    }
}

TEST(ActiveTracker, CompactionBoundsTheBuffer)
{
    ActiveTracker tracker(16, 1);
    for (int i = 0; i < 100000; ++i) {
        tracker.add(i % 2 == 0 ? 2 : -1);
    }
    EXPECT_EQ(tracker.events(), 100000u);
    const auto samples = tracker.samples();
    EXPECT_LE(samples.size(), 16u);
    EXPECT_GE(samples.size(), 8u); // compaction halves, never empties
    // Uniform power-of-two spacing, starting at event 0.
    ASSERT_GE(samples.size(), 2u);
    const std::uint64_t stride = samples[1].event - samples[0].event;
    EXPECT_EQ(samples[0].event, 0u);
    EXPECT_EQ(stride & (stride - 1), 0u);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        EXPECT_EQ(samples[i].event - samples[i - 1].event, stride);
    }
}

TEST(ActiveTracker, SamplesAreEventOrdered)
{
    ActiveTracker tracker(32, 3);
    for (int i = 0; i < 500; ++i) {
        tracker.add(1);
    }
    const auto samples = tracker.samples();
    ASSERT_FALSE(samples.empty());
    EXPECT_TRUE(std::is_sorted(samples.begin(), samples.end(),
                               [](const ActiveTracker::Sample& a,
                                  const ActiveTracker::Sample& b) {
                                   return a.event < b.event;
                               }));
}

TEST(ActiveTracker, ConcurrentAddsLoseNoEvents)
{
    ActiveTracker tracker(64, 1);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tracker] {
            for (int i = 0; i < kPerThread; ++i) {
                tracker.add(1);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_EQ(tracker.events(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    const auto samples = tracker.samples();
    ASSERT_FALSE(samples.empty());
    for (const auto& s : samples) {
        EXPECT_GE(s.active, 1);
        EXPECT_LE(s.active, kThreads * kPerThread);
    }
}

// ------------------------------------------------- normalizedSeries

TEST(NormalizedSeries, EmptyTrackerGivesZeros)
{
    ActiveTracker tracker(16, 1);
    const auto series = tracker.normalizedSeries(8);
    ASSERT_EQ(series.size(), 8u);
    for (const double v : series) {
        EXPECT_DOUBLE_EQ(v, 0.0);
    }
}

TEST(NormalizedSeries, SingleEventFillsForward)
{
    ActiveTracker tracker(16, 1);
    tracker.add(5);
    const auto series = tracker.normalizedSeries(4);
    ASSERT_EQ(series.size(), 4u);
    // One sample at peak: bucket 0 is 1.0 and carries forward.
    for (const double v : series) {
        EXPECT_DOUBLE_EQ(v, 1.0);
    }
}

TEST(NormalizedSeries, NegativeCountsClampToZero)
{
    ActiveTracker tracker(16, 1);
    tracker.add(-5); // under-accounting must not produce negatives
    tracker.add(10);
    const auto series = tracker.normalizedSeries(4);
    for (const double v : series) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(NormalizedSeries, ValuesStayWithinUnitRange)
{
    ActiveTracker tracker(64, 1);
    for (int i = 0; i < 1000; ++i) {
        tracker.add(i < 500 ? 1 : -1);
    }
    const auto series = tracker.normalizedSeries(10);
    ASSERT_EQ(series.size(), 10u);
    for (const double v : series) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    // Triangle shape: the peak bucket dominates the edges.
    const double peak = *std::max_element(series.begin(), series.end());
    EXPECT_GT(peak, series.front() - 1e-9);
    EXPECT_GT(peak, series.back());
}

} // namespace

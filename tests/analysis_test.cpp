/**
 * @file
 * Unit tests for the dynamic race detector and its allowlist: every
 * interleaving is hand-built on a sim::Machine, so each test states
 * exactly which happens-before edges exist and asserts the detector
 * flags a seeded race — or stays silent for lock-, barrier-,
 * atomic-publish- and claim-protected patterns.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/race_detector.h"
#include "analysis/report.h"
#include "core/bfs.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "sim/machine.h"
#include "sim/sync.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using analysis::AccessKind;
using analysis::RaceDetector;
using analysis::RaceRecord;
using analysis::Suppressions;

/** A machine + detector pair wired together. */
struct Rig {
    sim::Machine machine{test::smallSimConfig()};
    RaceDetector det;

    Rig() { machine.setObserver(&det); }
};

TEST(RaceDetector, SeededWriteWriteRaceFlagged)
{
    Rig rig;
    std::uint32_t x = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        ctx.write(x, static_cast<std::uint32_t>(ctx.tid()));
    });
    ASSERT_EQ(rig.det.totalRaces(), 1u);
    ASSERT_EQ(rig.det.unsuppressedCount(), 1u);
    const RaceRecord& r = rig.det.races().front();
    EXPECT_EQ(r.addr, reinterpret_cast<std::uintptr_t>(&x));
    EXPECT_EQ(r.size, sizeof(x));
    EXPECT_EQ(r.prior_kind, AccessKind::kWrite);
    EXPECT_EQ(r.current_kind, AccessKind::kWrite);
    EXPECT_NE(r.prior_tid, r.current_tid);
    EXPECT_TRUE(r.lockset_empty);
}

TEST(RaceDetector, UnorderedWriteReadPairFlagged)
{
    Rig rig;
    std::uint64_t x = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        if (ctx.tid() == 0) {
            ctx.write(x, std::uint64_t{7});
        } else {
            (void)ctx.read(x);
        }
    });
    ASSERT_EQ(rig.det.totalRaces(), 1u);
    EXPECT_EQ(rig.det.races().front().addr,
              reinterpret_cast<std::uintptr_t>(&x));
}

TEST(RaceDetector, ConcurrentReadersSilent)
{
    Rig rig;
    const std::uint64_t x = 42; // written before the region: no race
    rig.machine.run(4, [&](sim::SimCtx& ctx) {
        for (int i = 0; i < 3; ++i) {
            (void)ctx.read(x);
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u);
}

TEST(RaceDetector, LockProtectedCounterSilent)
{
    Rig rig;
    sim::SimMutex m;
    std::uint64_t counter = 0;
    rig.machine.run(4, [&](sim::SimCtx& ctx) {
        for (int i = 0; i < 4; ++i) {
            ctx.lock(m);
            ctx.write(counter, ctx.read(counter) + 1);
            ctx.unlock(m);
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u) << analysis::racesJson(rig.det);
    EXPECT_EQ(counter, 16u);
}

TEST(RaceDetector, SameDataDifferentLocksFlaggedWithLockset)
{
    Rig rig;
    sim::SimMutex locks[2];
    std::uint64_t counter = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        sim::SimMutex& m = locks[ctx.tid()]; // disjoint locks: a race
        ctx.lock(m);
        ctx.write(counter, ctx.read(counter) + 1);
        ctx.unlock(m);
    });
    ASSERT_EQ(rig.det.totalRaces(), 1u);
    // Eraser cross-check: a lock *was* held on both sides, just never
    // a common one, so the candidate set is empty too.
    EXPECT_TRUE(rig.det.races().front().lockset_empty);
}

TEST(RaceDetector, BarrierSeparatedPhasesSilent)
{
    Rig rig;
    std::uint64_t cells[4] = {0, 0, 0, 0};
    rig.machine.run(4, [&](sim::SimCtx& ctx) {
        ctx.write(cells[ctx.tid()], std::uint64_t(ctx.tid()) + 1);
        ctx.barrier();
        // After the barrier every thread may read every cell.
        std::uint64_t sum = 0;
        for (const std::uint64_t& c : cells) {
            sum += ctx.read(c);
        }
        // A second barrier before writing again: without it the write
        // would race with the other threads' reads of this cell.
        ctx.barrier();
        ctx.write(cells[ctx.tid()], sum); // owner-exclusive again
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u) << analysis::racesJson(rig.det);
}

TEST(RaceDetector, MissingBarrierFlagged)
{
    Rig rig;
    std::uint64_t cells[2] = {0, 0};
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        ctx.write(cells[ctx.tid()], std::uint64_t(ctx.tid()) + 1);
        // No barrier: reading the peer's cell races with its write.
        (void)ctx.read(cells[1 - ctx.tid()]);
    });
    EXPECT_GE(rig.det.totalRaces(), 1u);
}

TEST(RaceDetector, FetchAddAccumulatorSilent)
{
    Rig rig;
    std::uint64_t total = 0;
    rig.machine.run(4, [&](sim::SimCtx& ctx) {
        for (int i = 0; i < 4; ++i) {
            ctx.fetchAdd(total, std::uint64_t{1});
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u);
    EXPECT_EQ(total, 16u);
}

TEST(RaceDetector, PlainReadOfFetchAddWordFlagged)
{
    Rig rig;
    std::uint64_t total = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        if (ctx.tid() == 0) {
            ctx.fetchAdd(total, std::uint64_t{1});
        } else {
            (void)ctx.read(total); // unordered plain read: a race
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 1u);
}

TEST(RaceDetector, ReadAtomicProbeIsExempt)
{
    Rig rig;
    std::uint64_t flag = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        if (ctx.tid() == 0) {
            ctx.write(flag, std::uint64_t{1});
        } else {
            // The declared-racy probe: same interleaving as
            // UnorderedWriteReadPairFlagged, but through readAtomic.
            (void)ctx.readAtomic(flag);
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u);
}

TEST(RaceDetector, AtomicPublishThenAcquireSilent)
{
    Rig rig;
    std::uint64_t data = 0;
    std::uint64_t flag = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        if (ctx.tid() == 0) {
            ctx.write(data, std::uint64_t{99});
            ctx.fetchAdd(flag, std::uint64_t{1}); // release-publish
        } else {
            while (ctx.readAtomic(flag) == 0) { // acquire on observe
            }
            EXPECT_EQ(ctx.read(data), 99u);
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u) << analysis::racesJson(rig.det);
}

TEST(RaceDetector, ClaimProtectedSlotsSilent)
{
    // The suite's capture idiom: threads claim disjoint indices via
    // fetchAdd on a shared cursor, then own their slots outright.
    Rig rig;
    std::uint64_t cursor = 0;
    std::uint64_t slots[8] = {};
    rig.machine.run(4, [&](sim::SimCtx& ctx) {
        for (;;) {
            const std::uint64_t i = ctx.fetchAdd(cursor, std::uint64_t{1});
            if (i >= 8) {
                break;
            }
            ctx.write(slots[i], i + 1);
            (void)ctx.read(slots[i]);
        }
    });
    EXPECT_EQ(rig.det.totalRaces(), 0u) << analysis::racesJson(rig.det);
}

TEST(RaceDetector, OneRecordPerAddressPerRegionButFreshAcrossRegions)
{
    Rig rig;
    std::uint32_t x = 0;
    const auto racy = [&](sim::SimCtx& ctx) {
        for (int i = 0; i < 3; ++i) {
            ctx.write(x, static_cast<std::uint32_t>(i));
        }
    };
    rig.machine.run(2, racy);
    EXPECT_EQ(rig.det.totalRaces(), 1u); // deduped within the region
    rig.machine.run(2, racy);
    EXPECT_EQ(rig.det.totalRaces(), 2u); // but re-reported next region
}

TEST(RaceDetector, AttributionUsesLiveSpansAndRegionLabel)
{
    obs::TelemetrySession session;
    Rig rig;
    rig.det.setRegionLabel("unit/attribution");
    std::uint32_t x = 0;
    {
        obs::ScopedHostSpan host("SEEDED_KERNEL");
        rig.machine.run(2, [&](sim::SimCtx& ctx) {
            ctx.write(x, static_cast<std::uint32_t>(ctx.tid()));
        });
    }
    ASSERT_EQ(rig.det.races().size(), 1u);
    const RaceRecord& r = rig.det.races().front();
    EXPECT_EQ(r.kernel, "SEEDED_KERNEL");
    EXPECT_EQ(r.region, "unit/attribution");
}

TEST(RaceDetector, SuppressionMatchesAndCounts)
{
    Suppressions allow;
    std::string err;
    ASSERT_TRUE(allow.parse("# seeded unit-test race, validated by\n"
                            "# RaceDetector.SeededWriteWriteRaceFlagged\n"
                            "race:unit/suppressed\n",
                            &err))
        << err;
    sim::Machine machine(test::smallSimConfig());
    RaceDetector det(std::move(allow));
    det.setRegionLabel("unit/suppressed");
    machine.setObserver(&det);
    std::uint32_t x = 0;
    machine.run(2, [&](sim::SimCtx& ctx) {
        ctx.write(x, static_cast<std::uint32_t>(ctx.tid()));
    });
    EXPECT_EQ(det.totalRaces(), 1u);
    EXPECT_EQ(det.unsuppressedCount(), 0u);
    ASSERT_EQ(det.races().size(), 1u);
    EXPECT_EQ(det.races().front().suppressed_by, "unit/suppressed");
}

TEST(Suppressions, JustificationIsRequired)
{
    Suppressions s;
    std::string err;
    EXPECT_FALSE(s.parse("race:BFS\n", &err));
    EXPECT_NE(err.find("justification"), std::string::npos) << err;

    // A blank line detaches a comment from the entry below it.
    EXPECT_FALSE(s.parse("# reason\n\nrace:BFS\n", &err));

    EXPECT_TRUE(s.parse("# reason\nrace:BFS\n", &err)) << err;
    ASSERT_EQ(s.entries().size(), 1u);
    EXPECT_EQ(s.entries()[0].pattern, "BFS");
    EXPECT_EQ(s.entries()[0].justification, "reason");
}

TEST(Suppressions, RejectsUnknownDirectivesAndEmptyPatterns)
{
    Suppressions s;
    std::string err;
    EXPECT_FALSE(s.parse("# x\nmutex:BFS\n", &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_FALSE(s.parse("# x\nrace:\n", &err));
}

TEST(RacesReport, SchemaRoundTrips)
{
    Rig rig;
    rig.det.setRegionLabel("unit/report");
    std::uint32_t x = 0;
    rig.machine.run(2, [&](sim::SimCtx& ctx) {
        ctx.write(x, static_cast<std::uint32_t>(ctx.tid()));
    });
    const std::string doc = analysis::racesJson(rig.det);
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(doc, v, &err)) << err << "\n" << doc;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("schema")->str, "crono.races.v1");
    EXPECT_EQ(v.find("total_races")->asU64(), 1u);
    EXPECT_EQ(v.find("unsuppressed")->asU64(), 1u);
    const obs::json::Value* races = v.find("races");
    ASSERT_TRUE(races != nullptr && races->isArray());
    ASSERT_EQ(races->arr.size(), 1u);
    const obs::json::Value& r = races->arr[0];
    EXPECT_EQ(r.find("region")->str, "unit/report");
    EXPECT_EQ(r.find("prior")->find("kind")->str, "write");
    EXPECT_EQ(r.find("current")->find("kind")->str, "write");
}

TEST(RaceDetector, ObserverDoesNotPerturbSimStats)
{
    // The modeled statistics must be bit-identical with and without
    // an observer installed — analysis is free, measurement-wise.
    const graph::Graph g = test::makeGraph("road");
    sim::Machine plain(test::smallSimConfig());
    const auto base = core::bfs(plain, 4, g, 0);

    sim::Machine watched(test::smallSimConfig());
    RaceDetector det;
    watched.setObserver(&det);
    const auto obs_run = core::bfs(watched, 4, g, 0);

    EXPECT_EQ(base.run.time, obs_run.run.time);
    const sim::SimRunStats& a = plain.lastStats();
    const sim::SimRunStats& b = watched.lastStats();
    EXPECT_EQ(a.completion_cycles, b.completion_cycles);
    EXPECT_EQ(a.l1d.accesses, b.l1d.accesses);
    EXPECT_EQ(a.l1d.totalMisses(), b.l1d.totalMisses());
    EXPECT_EQ(a.network.flit_hops, b.network.flit_hops);
    EXPECT_EQ(a.dram.accesses, b.dram.accesses);
}

} // namespace
} // namespace crono

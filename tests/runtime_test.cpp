/**
 * @file
 * Parallel-runtime tests: spinlocks, barriers, partitioners, the
 * vertex-capture and global-bound strategies, the executor, and the
 * instrumentation (Variability metric, ActiveTracker).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/barrier.h"
#include "runtime/executor.h"
#include "runtime/instrumentation.h"
#include "runtime/partition.h"
#include "runtime/spinlock.h"
#include "runtime/strategies.h"

namespace crono::rt {
namespace {

TEST(Spinlock, MutualExclusionUnderContention)
{
    Spinlock lock;
    std::uint64_t counter = 0;
    std::vector<std::thread> threads;
    constexpr int kThreads = 4, kIters = 20000;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                lock.lock();
                ++counter; // non-atomic: only safe under the lock
                lock.unlock();
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Spinlock, TryLockReflectsState)
{
    Spinlock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(Barrier, SingleParticipantNeverBlocks)
{
    Barrier b(1);
    for (int i = 0; i < 100; ++i) {
        b.arriveAndWait();
    }
}

TEST(Barrier, EpisodesSeparatePhases)
{
    constexpr int kThreads = 4, kEpisodes = 50;
    Barrier barrier(kThreads);
    std::atomic<int> phase_sum{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int e = 0; e < kEpisodes; ++e) {
                phase_sum.fetch_add(1);
                barrier.arriveAndWait();
                // After the barrier every participant of episode e has
                // contributed.
                if (phase_sum.load() < (e + 1) * kThreads) {
                    failed = true;
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(phase_sum.load(), kThreads * kEpisodes);
}

TEST(Partition, BlocksCoverRangeExactlyOnce)
{
    for (std::uint64_t total : {0ull, 1ull, 7ull, 100ull, 1024ull}) {
        for (int nthreads : {1, 3, 8, 17}) {
            std::uint64_t covered = 0;
            std::uint64_t prev_end = 0;
            for (int t = 0; t < nthreads; ++t) {
                const Range r = blockPartition(total, t, nthreads);
                EXPECT_EQ(r.begin, prev_end);
                prev_end = r.end;
                covered += r.size();
            }
            EXPECT_EQ(prev_end, total);
            EXPECT_EQ(covered, total);
        }
    }
}

TEST(Partition, BlockSizesDifferByAtMostOne)
{
    for (int t = 0; t < 7; ++t) {
        const Range r = blockPartition(23, t, 7);
        EXPECT_GE(r.size(), 3u);
        EXPECT_LE(r.size(), 4u);
    }
}

TEST(Partition, CyclicVisitsEveryIndexOnce)
{
    std::vector<int> seen(100, 0);
    for (int t = 0; t < 7; ++t) {
        cyclicPartition(100, t, 7, [&](std::uint64_t i) { ++seen[i]; });
    }
    for (int count : seen) {
        EXPECT_EQ(count, 1);
    }
}

TEST(Variability, MatchesEquationTwo)
{
    // (max - min) / max
    EXPECT_DOUBLE_EQ(variability({100, 50}), 0.5);
    EXPECT_DOUBLE_EQ(variability({10, 10, 10}), 0.0);
    EXPECT_DOUBLE_EQ(variability({0, 100}), 1.0);
    EXPECT_DOUBLE_EQ(variability({}), 0.0);
    EXPECT_DOUBLE_EQ(variability({0, 0}), 0.0);
}

TEST(ActiveTracker, CountsEventsAndSamples)
{
    ActiveTracker tracker(64, 1);
    for (int i = 0; i < 10; ++i) {
        tracker.add(1);
    }
    for (int i = 0; i < 4; ++i) {
        tracker.sub(1);
    }
    EXPECT_EQ(tracker.events(), 14u);
    const auto samples = tracker.samples();
    ASSERT_FALSE(samples.empty());
    EXPECT_EQ(samples.back().active, 6);
}

TEST(ActiveTracker, CompactsWhenFull)
{
    ActiveTracker tracker(16, 1);
    for (int i = 0; i < 1000; ++i) {
        tracker.add(1);
    }
    EXPECT_EQ(tracker.events(), 1000u);
    EXPECT_LE(tracker.samples().size(), 16u);
    EXPECT_FALSE(tracker.samples().empty());
}

TEST(ActiveTracker, NormalizedSeriesShapes)
{
    ActiveTracker tracker(1024, 1);
    // Ramp up then down: the series should peak in the middle.
    for (int i = 0; i < 100; ++i) {
        tracker.add(1);
    }
    for (int i = 0; i < 100; ++i) {
        tracker.sub(1);
    }
    const auto series = tracker.normalizedSeries(10);
    ASSERT_EQ(series.size(), 10u);
    EXPECT_GT(series[4], series[0]);
    EXPECT_GT(series[4], series[9]);
    for (double v : series) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(Executor, RunsBodyOnEveryThread)
{
    NativeExecutor exec(8);
    std::vector<int> hits(8, 0);
    const RunInfo info = exec.parallel(8, [&](NativeCtx& ctx) {
        hits[ctx.tid()] = 1;
        EXPECT_EQ(ctx.nthreads(), 8);
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 8);
    EXPECT_EQ(info.thread_ops.size(), 8u);
    EXPECT_GT(info.time, 0.0);
}

TEST(Executor, ReusableAcrossRegionsAndWidths)
{
    NativeExecutor exec(4);
    for (int n = 1; n <= 4; ++n) {
        std::atomic<int> count{0};
        exec.parallel(n, [&](NativeCtx&) { count.fetch_add(1); });
        EXPECT_EQ(count.load(), n);
    }
}

TEST(Executor, BarrierSynchronizesRegion)
{
    NativeExecutor exec(4);
    std::vector<std::uint64_t> data(4, 0);
    std::vector<std::uint64_t> sums(4, 0);
    exec.parallel(4, [&](NativeCtx& ctx) {
        data[ctx.tid()] = ctx.tid() + 1;
        ctx.barrier();
        std::uint64_t sum = 0;
        for (int t = 0; t < 4; ++t) {
            sum += ctx.read(data[t]);
        }
        sums[ctx.tid()] = sum;
    });
    for (std::uint64_t s : sums) {
        EXPECT_EQ(s, 10u);
    }
}

TEST(Executor, OpsCountLoadsStoresAndWork)
{
    NativeExecutor exec(2);
    const RunInfo info = exec.parallel(2, [&](NativeCtx& ctx) {
        std::uint64_t x = 0;
        ctx.write(x, std::uint64_t{1}); // 1 op
        (void)ctx.read(x);              // 1 op
        ctx.work(10);                   // 10 ops
    });
    for (std::uint64_t ops : info.thread_ops) {
        EXPECT_GE(ops, 12u);
    }
}

TEST(Executor, VariabilityReportedForImbalancedWork)
{
    NativeExecutor exec(2);
    const RunInfo info = exec.parallel(2, [&](NativeCtx& ctx) {
        ctx.work(ctx.tid() == 0 ? 1000 : 100);
    });
    EXPECT_GT(info.variability, 0.5);
}

TEST(Strategies, CaptureNextDistributesAllItems)
{
    NativeExecutor exec(4);
    CaptureCounter counter;
    std::vector<std::atomic<int>> claimed(100);
    exec.parallel(4, [&](NativeCtx& ctx) {
        for (;;) {
            const std::uint64_t i = captureNext(ctx, counter, 100);
            if (i == kCaptureDone) {
                break;
            }
            claimed[i].fetch_add(1);
        }
    });
    for (auto& c : claimed) {
        EXPECT_EQ(c.load(), 1);
    }
}

TEST(Strategies, GlobalBoundOnlyImproves)
{
    NativeExecutor exec(4);
    GlobalBound<NativeCtx> bound;
    exec.parallel(4, [&](NativeCtx& ctx) {
        for (std::uint64_t c = 1000; c > 100; c -= 7) {
            bound.tryImprove(ctx, c + ctx.tid());
        }
        // A worse candidate never wins.
        EXPECT_FALSE(bound.tryImprove(ctx, 5000));
    });
    EXPECT_LE(bound.value, 108u);
}

} // namespace
} // namespace crono::rt

/**
 * @file
 * Machine-level tests: fibers, deterministic scheduling, simulated
 * synchronization (mutex handoff, barriers), the SimCtx contract,
 * thread multiplexing on the real-machine configuration, and run
 * statistics invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/aligned.h"
#include "sim/fiber.h"
#include "sim/machine.h"

namespace crono::sim {
namespace {

Config
tinyConfig(int cores = 4)
{
    Config cfg = Config::futuristic256();
    cfg.num_cores = cores;
    return cfg;
}

TEST(Fiber, RunsToCompletion)
{
    int state = 0;
    Fiber f([&] { state = 42; }, 128 * 1024);
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldAndResumeInterleave)
{
    std::vector<int> trace;
    Fiber* handle = nullptr;
    Fiber f(
        [&] {
            trace.push_back(1);
            handle->yieldToHost();
            trace.push_back(3);
        },
        128 * 1024);
    handle = &f;
    f.resume();
    trace.push_back(2);
    f.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(f.finished());
}

TEST(Fiber, TwoFibersPingPong)
{
    std::vector<int> trace;
    Fiber *ha = nullptr, *hb = nullptr;
    Fiber a(
        [&] {
            trace.push_back(1);
            ha->yieldToHost();
            trace.push_back(4);
        },
        128 * 1024);
    Fiber b(
        [&] {
            trace.push_back(2);
            hb->yieldToHost();
            trace.push_back(5);
        },
        128 * 1024);
    ha = &a;
    hb = &b;
    a.resume();
    b.resume();
    trace.push_back(3);
    a.resume();
    b.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Machine, RunsAllThreads)
{
    Machine m(tinyConfig());
    std::vector<int> hits(8, 0);
    m.run(8, [&](SimCtx& ctx) {
        hits[ctx.tid()] = 1;
        EXPECT_EQ(ctx.nthreads(), 8);
    });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
}

TEST(Machine, ClockAdvancesWithWork)
{
    Machine m(tinyConfig());
    const auto st = m.run(2, [](SimCtx& ctx) { ctx.work(1000); });
    EXPECT_GE(st.completion_cycles, 1000u);
    EXPECT_EQ(st.l1i_accesses, 2000u);
}

TEST(Machine, ReadsAndWritesAreFunctionallyCorrect)
{
    Machine m(tinyConfig());
    AlignedVector<std::uint64_t> data(16, 0);
    m.run(4, [&](SimCtx& ctx) {
        ctx.write(data[ctx.tid()], static_cast<std::uint64_t>(ctx.tid()) + 1);
        ctx.barrier();
        std::uint64_t sum = 0;
        for (int t = 0; t < 4; ++t) {
            sum += ctx.read(data[t]);
        }
        ctx.write(data[8 + ctx.tid()], sum);
    });
    for (int t = 0; t < 4; ++t) {
        EXPECT_EQ(data[8 + t], 10u);
    }
}

TEST(Machine, FetchAddIsAtomicAcrossFibers)
{
    Machine m(tinyConfig());
    Padded<std::uint64_t> counter;
    m.run(8, [&](SimCtx& ctx) {
        for (int i = 0; i < 100; ++i) {
            ctx.fetchAdd(counter.value, std::uint64_t{1});
        }
    });
    EXPECT_EQ(counter.value, 800u);
}

TEST(Machine, MutexProvidesMutualExclusion)
{
    Machine m(tinyConfig());
    SimMutex mutex;
    std::uint64_t plain = 0; // guarded only by the mutex
    m.run(8, [&](SimCtx& ctx) {
        for (int i = 0; i < 50; ++i) {
            ctx.lock(mutex);
            const std::uint64_t v = ctx.read(plain);
            ctx.work(3); // widen the critical section
            ctx.write(plain, v + 1);
            ctx.unlock(mutex);
        }
    });
    EXPECT_EQ(plain, 400u);
}

TEST(Machine, ContendedMutexChargesSynchronization)
{
    Machine m(tinyConfig());
    SimMutex mutex;
    const auto st = m.run(4, [&](SimCtx& ctx) {
        for (int i = 0; i < 20; ++i) {
            ctx.lock(mutex);
            ctx.work(500); // long critical section forces waiting
            ctx.unlock(mutex);
        }
    });
    EXPECT_GT(st.breakdown[Component::synchronization], 1000.0);
}

TEST(Machine, BarrierReleasesEveryoneTogether)
{
    Machine m(tinyConfig());
    AlignedVector<std::uint64_t> stage(8, 0);
    bool ok = true;
    m.run(8, [&](SimCtx& ctx) {
        // Uneven pre-barrier work.
        ctx.work(static_cast<std::uint64_t>(ctx.tid()) * 100);
        ctx.write(stage[ctx.tid()], std::uint64_t{1});
        ctx.barrier();
        for (int t = 0; t < 8; ++t) {
            if (ctx.read(stage[t]) != 1) {
                ok = false;
            }
        }
    });
    EXPECT_TRUE(ok);
}

TEST(Machine, RepeatedBarrierEpisodes)
{
    Machine m(tinyConfig());
    Padded<std::uint64_t> counter;
    bool ok = true;
    m.run(4, [&](SimCtx& ctx) {
        for (int round = 1; round <= 10; ++round) {
            ctx.fetchAdd(counter.value, std::uint64_t{1});
            ctx.barrier();
            if (ctx.read(counter.value) !=
                static_cast<std::uint64_t>(4 * round)) {
                ok = false;
            }
            ctx.barrier();
        }
    });
    EXPECT_TRUE(ok);
}

TEST(Machine, DeterministicAcrossRuns)
{
    Config cfg = tinyConfig(8);
    Machine m(cfg);
    auto body = [](SimCtx& ctx) {
        thread_local std::uint64_t sink = 0;
        static Padded<std::uint64_t> shared;
        for (int i = 0; i < 200; ++i) {
            ctx.fetchAdd(shared.value, std::uint64_t{1});
            ctx.work(ctx.tid() + 1);
            sink += i;
        }
    };
    const auto first = m.run(8, body).completion_cycles;
    const auto second = m.run(8, body).completion_cycles;
    EXPECT_EQ(first, second);
}

TEST(Machine, BreakdownCoversCompletionTime)
{
    Machine m(tinyConfig());
    const auto st = m.run(4, [&](SimCtx& ctx) {
        AlignedVector<std::uint64_t> local(64, 0);
        for (int i = 0; i < 64; ++i) {
            ctx.write(local[i], std::uint64_t{1});
        }
        ctx.work(100);
        ctx.barrier();
    });
    // Summed across threads, the breakdown must at least cover the
    // region's completion time (threads end within notify skew).
    EXPECT_GE(st.breakdown.total() + 4.0 * 64,
              static_cast<double>(st.completion_cycles));
    // And each thread's clock is bounded by the completion time.
    EXPECT_EQ(st.thread_ops.size(), 4u);
}

TEST(Machine, MultiplexingSerializesCoSCheduledThreads)
{
    // 2 cores, 4 threads: pure compute cannot speed up beyond 2x, and
    // context switches add overhead.
    Config cfg = tinyConfig(2);
    Machine m(cfg);
    auto body = [](SimCtx& ctx) { ctx.work(50000); };
    const auto two = m.run(2, body).completion_cycles;
    const auto four = m.run(4, body).completion_cycles;
    EXPECT_GE(four, 2 * two);
}

TEST(Machine, RealMachineConfigRuns)
{
    Machine m(Config::realMachine());
    AlignedVector<std::uint64_t> data(64, 0);
    const auto st = m.run(16, [&](SimCtx& ctx) { // 16 SW on 8 HW
        for (int i = 0; i < 32; ++i) {
            ctx.fetchAdd(data[i % 8], std::uint64_t{1});
        }
        ctx.barrier();
    });
    EXPECT_GT(st.completion_cycles, 0u);
    EXPECT_EQ(st.thread_ops.size(), 16u);
}

TEST(Machine, ParallelAdapterMatchesRun)
{
    Machine m(tinyConfig());
    const rt::RunInfo info =
        m.parallel(4, [](SimCtx& ctx) { ctx.work(100); });
    EXPECT_EQ(info.time,
              static_cast<double>(m.lastStats().completion_cycles));
    EXPECT_EQ(info.thread_ops.size(), 4u);
}

TEST(Machine, EnergyAccumulatesWithTraffic)
{
    Machine m(tinyConfig());
    AlignedVector<std::uint64_t> data(1024, 0);
    const auto st = m.run(4, [&](SimCtx& ctx) {
        for (std::size_t i = ctx.tid(); i < data.size(); i += 4) {
            ctx.write(data[i], std::uint64_t{1});
        }
    });
    EXPECT_GT(st.energy.total(), 0.0);
    EXPECT_GT(st.energy.l1d, 0.0);
    EXPECT_GT(st.energy.dram, 0.0); // cold misses hit memory
    EXPECT_GT(st.energy.router + st.energy.link, 0.0);
}

TEST(Machine, OpsCountPerThread)
{
    Machine m(tinyConfig());
    const auto st = m.run(2, [](SimCtx& ctx) {
        std::uint64_t x = 0;
        ctx.write(x, std::uint64_t{1});
        ctx.work(9);
    });
    for (std::uint64_t ops : st.thread_ops) {
        EXPECT_GE(ops, 10u);
    }
}

} // namespace
} // namespace crono::sim

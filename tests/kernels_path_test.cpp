/**
 * @file
 * Path-planning kernel tests: SSSP, APSP, betweenness centrality.
 * Each kernel is checked against its sequential reference over the
 * full graph catalog and a sweep of thread counts, plus invariant
 * (property) tests that hold regardless of scheduling.
 */

#include <gtest/gtest.h>

#include "core/apsp.h"
#include "graph/builder.h"
#include "core/betweenness.h"
#include "core/sequential.h"
#include "core/sssp.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using test::GraphThreads;

class SsspParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(SsspParamTest, MatchesDijkstraOnNativeThreads)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::sssp(exec, threads, g, 0);
    const auto expect = core::seq::sssp(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.dist[v], expect[v])
            << name << " vertex " << v;
    }
}

TEST_P(SsspParamTest, ParentTreeIsConsistent)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::sssp(exec, threads, g, 0);
    // Property: dist[v] == dist[parent[v]] + w(parent[v], v) for every
    // reached non-source vertex, and the parent edge exists.
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (v == 0 || result.dist[v] == graph::kInfDist) {
            continue;
        }
        const graph::VertexId p = result.parent[v];
        ASSERT_NE(p, graph::kNoVertex);
        bool edge_found = false;
        auto ns = g.neighbors(p);
        auto ws = g.weights(p);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            if (ns[i] == v &&
                result.dist[p] + ws[i] == result.dist[v]) {
                edge_found = true;
                break;
            }
        }
        EXPECT_TRUE(edge_found) << name << " vertex " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, SsspParamTest,
    ::testing::Combine(::testing::Values("path", "ring", "star", "grid",
                                         "cliques", "sparse", "road",
                                         "social"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(Sssp, RelaxationFixpointProperty)
{
    // Property: at termination no edge can relax any further.
    const graph::Graph g = test::makeGraph("sparse");
    rt::NativeExecutor exec(4);
    const auto result = core::sssp(exec, 4, g, 5);
    for (graph::VertexId u = 0; u < g.numVertices(); ++u) {
        if (result.dist[u] == graph::kInfDist) {
            continue;
        }
        auto ns = g.neighbors(u);
        auto ws = g.weights(u);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            EXPECT_LE(result.dist[ns[i]], result.dist[u] + ws[i]);
        }
    }
}

TEST(Sssp, UnreachableVerticesStayInfinite)
{
    const graph::Graph g = test::makeGraph("cliques"); // 5 components
    rt::NativeExecutor exec(4);
    const auto result = core::sssp(exec, 4, g, 0);
    for (graph::VertexId v = 6; v < g.numVertices(); ++v) {
        EXPECT_EQ(result.dist[v], graph::kInfDist);
        EXPECT_EQ(result.parent[v], graph::kNoVertex);
    }
}

TEST(Sssp, NonZeroSourceOnSimulator)
{
    const graph::Graph g = test::makeGraph("road");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::sssp(machine, 8, g, 17);
    const auto expect = core::seq::sssp(g, 17);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.dist[v], expect[v]);
    }
}

TEST(Sssp, SingleVertexGraph)
{
    graph::GraphBuilder b(1, true);
    const graph::Graph g = std::move(b).build();
    rt::NativeExecutor exec(2);
    const auto result = core::sssp(exec, 2, g, 0);
    EXPECT_EQ(result.dist[0], 0u);
}

class ApspParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(ApspParamTest, MatchesFloydWarshall)
{
    const auto [name, threads] = GetParam();
    const graph::AdjacencyMatrix m(test::makeGraph(name));
    rt::NativeExecutor exec(threads);
    const auto result = core::apsp(exec, threads, m);
    const auto expect = core::seq::apsp(m);
    for (graph::VertexId s = 0; s < m.numVertices(); ++s) {
        for (graph::VertexId t = 0; t < m.numVertices(); ++t) {
            if (s == t) {
                continue; // parallel version reports 0 as well
            }
            ASSERT_EQ(result.at(s, t),
                      expect[static_cast<std::size_t>(s) *
                                 m.numVertices() +
                             t])
                << name << " pair " << s << "," << t;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ApspParamTest,
    ::testing::Combine(::testing::Values("ring", "star", "grid",
                                         "complete", "cliques"),
                       ::testing::Values(1, 3, 8)),
    test::graphThreadsName);

TEST(Apsp, TriangleInequalityProperty)
{
    const graph::AdjacencyMatrix m(test::makeGraph("grid"));
    rt::NativeExecutor exec(4);
    const auto result = core::apsp(exec, 4, m);
    const graph::VertexId n = m.numVertices();
    for (graph::VertexId a = 0; a < n; a += 3) {
        for (graph::VertexId b = 0; b < n; b += 3) {
            for (graph::VertexId c = 0; c < n; c += 3) {
                if (result.at(a, b) == graph::kInfDist ||
                    result.at(b, c) == graph::kInfDist) {
                    continue;
                }
                EXPECT_LE(result.at(a, c),
                          result.at(a, b) + result.at(b, c));
            }
        }
    }
}

TEST(Apsp, SymmetricForUndirectedInputs)
{
    const graph::AdjacencyMatrix m(test::makeGraph("sparse"));
    rt::NativeExecutor exec(4);
    const auto result = core::apsp(exec, 4, m);
    const graph::VertexId n = m.numVertices();
    for (graph::VertexId a = 0; a < n; a += 7) {
        for (graph::VertexId b = 0; b < n; b += 5) {
            EXPECT_EQ(result.at(a, b), result.at(b, a));
        }
    }
}

TEST(Apsp, AgreesWithRepeatedSssp)
{
    const graph::Graph g = test::makeGraph("grid");
    const graph::AdjacencyMatrix m(g);
    rt::NativeExecutor exec(4);
    const auto result = core::apsp(exec, 4, m);
    for (graph::VertexId s = 0; s < g.numVertices(); s += 5) {
        const auto dist = core::seq::sssp(g, s);
        for (graph::VertexId t = 0; t < g.numVertices(); ++t) {
            if (s != t) {
                EXPECT_EQ(result.at(s, t), dist[t]);
            }
        }
    }
}

TEST(Apsp, RunsOnSimulator)
{
    const graph::AdjacencyMatrix m(test::makeGraph("ring"));
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::apsp(machine, 8, m);
    const auto expect = core::seq::apsp(m);
    for (graph::VertexId s = 0; s < m.numVertices(); ++s) {
        for (graph::VertexId t = 0; t < m.numVertices(); ++t) {
            if (s != t) {
                ASSERT_EQ(result.at(s, t),
                          expect[static_cast<std::size_t>(s) *
                                     m.numVertices() +
                                 t]);
            }
        }
    }
}

class BetweennessParamTest
    : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(BetweennessParamTest, MatchesBruteForceCounting)
{
    const auto [name, threads] = GetParam();
    const graph::AdjacencyMatrix m(test::makeGraph(name));
    rt::NativeExecutor exec(threads);
    const auto result = core::betweenness(exec, threads, m);
    const auto expect = core::seq::betweenness(m);
    for (graph::VertexId v = 0; v < m.numVertices(); ++v) {
        ASSERT_EQ(result.centrality[v], expect[v]) << name << " v " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, BetweennessParamTest,
    ::testing::Combine(::testing::Values("ring", "star", "grid",
                                         "linked-cliques"),
                       ::testing::Values(1, 4, 8)),
    test::graphThreadsName);

TEST(Betweenness, StarCenterDominates)
{
    // Every pair of leaves routes through the center.
    const graph::AdjacencyMatrix m(test::makeGraph("star"));
    rt::NativeExecutor exec(4);
    const auto result = core::betweenness(exec, 4, m);
    const graph::VertexId n = m.numVertices();
    EXPECT_EQ(result.centrality[0],
              static_cast<std::uint64_t>(n - 1) * (n - 2));
    for (graph::VertexId v = 1; v < n; ++v) {
        EXPECT_EQ(result.centrality[v], 0u);
    }
}

TEST(Betweenness, RunsOnSimulator)
{
    const graph::AdjacencyMatrix m(test::makeGraph("ring"));
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::betweenness(machine, 8, m);
    const auto expect = core::seq::betweenness(m);
    for (graph::VertexId v = 0; v < m.numVertices(); ++v) {
        ASSERT_EQ(result.centrality[v], expect[v]);
    }
}

} // namespace
} // namespace crono

/**
 * @file
 * Push/pull equivalence properties for the rt::par edge maps: the
 * same kernel run under every FrontierMode — push-only flag scan,
 * sparse work lists, forced pull, and the adaptive
 * direction-optimizing dispatcher — must produce identical results on
 * road, uniform-random and social (power-law) generators, across
 * thread counts, in both the native and the simulated execution
 * contexts. Levels/distances/labels are compared exactly; BFS parents
 * may legitimately differ between directions (push races for the
 * claim, pull takes the first in-CSR-order in-front neighbor), so
 * parents are checked for tree validity instead of equality.
 *
 * Simulator suites carry "Sim" in their name so the TSan harness can
 * filter them out (ucontext fibers and TSan do not mix).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/bfs.h"
#include "core/connected_components.h"
#include "core/sssp.h"
#include "graph/generators.h"
#include "runtime/executor.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using rt::FrontierMode;

/** Every traversal mode, baseline (flag scan) first. */
const FrontierMode kAllModes[] = {
    FrontierMode::kFlagScan, FrontierMode::kSparse,
    FrontierMode::kAdaptive, FrontierMode::kPull};

/**
 * Larger-than-catalog instances so the adaptive policy actually
 * crosses its thresholds: the social graph's heavy middle rounds put
 * well over V/20 vertices on the front (pull fires), while the road
 * network's thin fronts stay push-side throughout (proving the
 * dispatcher is a no-op there).
 */
graph::Graph
equivGraph(const std::string& name)
{
    namespace gen = graph::generators;
    if (name == "road") {
        return gen::roadNetwork(24, 24, 13);
    }
    if (name == "uniform") {
        return gen::uniformRandom(1200, 6000, 32, 7);
    }
    if (name == "social") {
        return gen::socialNetwork(10, 8, 23);
    }
    ADD_FAILURE() << "unknown graph " << name;
    return gen::path(2);
}

/** parent[] must encode a valid BFS tree for the given levels. */
void
checkBfsTree(const graph::Graph& g, const core::BfsResult& res,
             graph::VertexId source)
{
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        if (res.level[v] == core::kNoLevel || v == source) {
            continue;
        }
        const graph::VertexId p = res.parent[v];
        ASSERT_NE(p, graph::kNoVertex) << "v " << v;
        EXPECT_EQ(res.level[p] + 1, res.level[v]) << "v " << v;
        bool adjacent = false;
        for (const graph::VertexId u : g.neighbors(p)) {
            if (u == v) {
                adjacent = true;
                break;
            }
        }
        EXPECT_TRUE(adjacent) << "parent " << p << " not adjacent to "
                              << v;
    }
}

class ParEquivalence
    : public ::testing::TestWithParam<test::GraphThreads> {};

TEST_P(ParEquivalence, BfsLevelsIdenticalAcrossModes)
{
    const auto& [name, threads] = GetParam();
    const graph::Graph g = equivGraph(name);
    rt::NativeExecutor exec(threads);
    const auto base = core::bfs(exec, threads, g, 0, graph::kNoVertex,
                                nullptr, FrontierMode::kFlagScan);
    checkBfsTree(g, base, 0);
    for (const FrontierMode mode : kAllModes) {
        const auto got = core::bfs(exec, threads, g, 0,
                                   graph::kNoVertex, nullptr, mode);
        SCOPED_TRACE(rt::frontierModeName(mode));
        EXPECT_EQ(got.reached, base.reached);
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(got.level[v], base.level[v]) << "v " << v;
        }
        checkBfsTree(g, got, 0);
    }
}

TEST_P(ParEquivalence, SsspDistancesIdenticalAcrossModes)
{
    const auto& [name, threads] = GetParam();
    const graph::Graph g = equivGraph(name);
    rt::NativeExecutor exec(threads);
    const auto base = core::sssp(exec, threads, g, 0, nullptr,
                                 FrontierMode::kFlagScan);
    for (const FrontierMode mode : kAllModes) {
        const auto got = core::sssp(exec, threads, g, 0, nullptr, mode);
        SCOPED_TRACE(rt::frontierModeName(mode));
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(got.dist[v], base.dist[v]) << "v " << v;
        }
    }
}

TEST_P(ParEquivalence, ComponentLabelsIdenticalAcrossModes)
{
    const auto& [name, threads] = GetParam();
    const graph::Graph g = equivGraph(name);
    rt::NativeExecutor exec(threads);
    const auto base = core::connectedComponents(
        exec, threads, g, nullptr, FrontierMode::kFlagScan);
    for (const FrontierMode mode : kAllModes) {
        const auto got =
            core::connectedComponents(exec, threads, g, nullptr, mode);
        SCOPED_TRACE(rt::frontierModeName(mode));
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(got.label[v], base.label[v]) << "v " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Generators, ParEquivalence,
    ::testing::Combine(::testing::Values("road", "uniform", "social"),
                       ::testing::Values(1, 4)),
    test::graphThreadsName);

/**
 * Simulated-context half of the property: the same mode sweep on the
 * catalog-size graphs (the simulator is orders of magnitude slower),
 * compared against the native flag-scan baseline — one check that the
 * primitives' Ctx::read/write/fetchAdd modeling did not change the
 * algorithm.
 */
class ParEquivalenceSim : public ::testing::TestWithParam<std::string> {
};

TEST_P(ParEquivalenceSim, BfsAndSsspMatchNativeAcrossModes)
{
    const graph::Graph g = test::makeGraph(GetParam());
    rt::NativeExecutor exec(4);
    const auto native_bfs = core::bfs(exec, 4, g, 0);
    const auto native_sssp = core::sssp(exec, 4, g, 0);

    sim::Machine machine(test::smallSimConfig());
    for (const FrontierMode mode : kAllModes) {
        SCOPED_TRACE(rt::frontierModeName(mode));
        const auto bfs = core::bfs(machine, 4, g, 0, graph::kNoVertex,
                                   nullptr, mode);
        EXPECT_EQ(bfs.reached, native_bfs.reached);
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(bfs.level[v], native_bfs.level[v]) << "v " << v;
        }
        checkBfsTree(g, bfs, 0);
        const auto sssp = core::sssp(machine, 4, g, 0, nullptr, mode);
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            ASSERT_EQ(sssp.dist[v], native_sssp.dist[v]) << "v " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Generators, ParEquivalenceSim,
                         ::testing::Values("road", "sparse", "social"));

} // namespace
} // namespace crono

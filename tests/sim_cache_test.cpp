/**
 * @file
 * Set-associative cache model tests: lookup, LRU replacement,
 * eviction reporting, and state maintenance.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"

namespace crono::sim {
namespace {

CacheConfig
tinyConfig()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    return CacheConfig{512, 2, 1};
}

TEST(Cache, GeometryFromConfig)
{
    Cache c(tinyConfig(), 64);
    EXPECT_EQ(c.numSets(), 4u);
    const Config table2; // Table II defaults
    Cache l1(table2.l1d, table2.line_bytes);
    EXPECT_EQ(l1.numSets(), 128u); // 32 KB / (64 B x 4 ways)
    Cache l2(table2.l2, table2.line_bytes);
    EXPECT_EQ(l2.numSets(), 512u); // 256 KB / (64 B x 8 ways)
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyConfig(), 64);
    EXPECT_EQ(c.lookup(100), LineState::invalid);
    c.insert(100, LineState::shared);
    EXPECT_EQ(c.lookup(100), LineState::shared);
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache c(tinyConfig(), 64);
    // Same set: lines 0, 4, 8 (4 sets).
    c.insert(0, LineState::shared);
    c.insert(4, LineState::shared);
    // peek(0) must not refresh line 0; lookup(4) makes 0 the LRU.
    EXPECT_EQ(c.peek(0), LineState::shared);
    c.lookup(4);
    c.lookup(0); // now 4 is LRU
    const auto victim = c.insert(8, LineState::shared);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, 4u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyConfig(), 64);
    c.insert(0, LineState::shared);
    c.insert(4, LineState::shared);
    c.lookup(0); // 4 becomes LRU
    const auto victim = c.insert(8, LineState::modified);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, 4u);
    EXPECT_EQ(victim.state, LineState::shared);
    EXPECT_EQ(c.peek(0), LineState::shared);
    EXPECT_EQ(c.peek(8), LineState::modified);
}

TEST(Cache, InsertPrefersInvalidWay)
{
    Cache c(tinyConfig(), 64);
    c.insert(0, LineState::shared);
    c.insert(4, LineState::shared);
    c.invalidate(0);
    const auto victim = c.insert(8, LineState::shared);
    EXPECT_FALSE(victim.valid); // reused the invalidated way
    EXPECT_EQ(c.peek(4), LineState::shared);
}

TEST(Cache, DifferentSetsDoNotConflict)
{
    Cache c(tinyConfig(), 64);
    for (LineAddr line = 0; line < 8; ++line) {
        EXPECT_FALSE(c.insert(line, LineState::shared).valid)
            << "line " << line;
    }
    EXPECT_EQ(c.occupancy(), 8u);
}

TEST(Cache, SetStateTransitions)
{
    Cache c(tinyConfig(), 64);
    c.insert(3, LineState::exclusive);
    c.setState(3, LineState::modified);
    EXPECT_EQ(c.peek(3), LineState::modified);
    c.setState(3, LineState::shared);
    EXPECT_EQ(c.peek(3), LineState::shared);
}

TEST(Cache, InvalidateReturnsPriorState)
{
    Cache c(tinyConfig(), 64);
    c.insert(3, LineState::modified);
    EXPECT_EQ(c.invalidate(3), LineState::modified);
    EXPECT_EQ(c.invalidate(3), LineState::invalid); // already gone
    EXPECT_EQ(c.peek(3), LineState::invalid);
}

TEST(Cache, OccupancyTracksContents)
{
    Cache c(tinyConfig(), 64);
    EXPECT_EQ(c.occupancy(), 0u);
    c.insert(1, LineState::shared);
    c.insert(2, LineState::shared);
    EXPECT_EQ(c.occupancy(), 2u);
    c.invalidate(1);
    EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, FullCacheKeepsCapacity)
{
    Cache c(tinyConfig(), 64);
    for (LineAddr line = 0; line < 100; ++line) {
        c.insert(line, LineState::shared);
    }
    EXPECT_EQ(c.occupancy(), 8u); // 4 sets x 2 ways
}

} // namespace
} // namespace crono::sim

/**
 * @file
 * Core timing-model tests: the in-order stall-on-use pipeline and the
 * ROB/LSQ-windowed out-of-order overlap model.
 */

#include <gtest/gtest.h>

#include "sim/core_model.h"

namespace crono::sim {
namespace {

AccessLatency
missLatency(std::uint64_t cycles)
{
    AccessLatency lat;
    lat.l1_to_l2 = cycles;
    return lat;
}

TEST(InOrder, ComputeAdvancesOneCyclePerInstruction)
{
    InOrderCore core;
    core.addCompute(100);
    EXPECT_EQ(core.now(), 100u);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::compute], 100.0);
}

TEST(InOrder, StallsFullAccessLatency)
{
    InOrderCore core;
    core.addAccess(false, missLatency(50));
    // 1 cycle issue/L1 + 50 cycles hierarchy.
    EXPECT_EQ(core.now(), 51u);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l1ToL2Home], 50.0);
}

TEST(InOrder, ComponentsAccumulateSeparately)
{
    InOrderCore core;
    AccessLatency lat;
    lat.l1_to_l2 = 10;
    lat.waiting = 20;
    lat.sharers = 30;
    lat.offchip = 40;
    core.addAccess(true, lat);
    EXPECT_EQ(core.now(), 101u);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l2HomeWaiting], 20.0);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l2HomeSharers], 30.0);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l2HomeOffChip], 40.0);
}

TEST(InOrder, WaitUntilChargesRequestedComponent)
{
    InOrderCore core;
    core.addCompute(10);
    core.waitUntil(100, Component::synchronization);
    EXPECT_EQ(core.now(), 100u);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::synchronization], 90.0);
    // Waiting into the past is a no-op.
    core.waitUntil(50, Component::synchronization);
    EXPECT_EQ(core.now(), 100u);
}

OooConfig
smallOoo()
{
    OooConfig cfg;
    cfg.rob_size = 8;
    cfg.load_queue = 4;
    cfg.store_queue = 2;
    return cfg;
}

TEST(OutOfOrder, IsolatedMissHidesCompletely)
{
    OutOfOrderCore core(smallOoo());
    core.addAccess(false, missLatency(100));
    // Only the 1-cycle issue slot is charged; the miss overlaps.
    EXPECT_EQ(core.now(), 1u);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l1ToL2Home], 0.0);
}

TEST(OutOfOrder, DrainExposesOutstandingLatency)
{
    OutOfOrderCore core(smallOoo());
    core.addAccess(false, missLatency(100));
    core.drain();
    EXPECT_EQ(core.now(), 101u);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l1ToL2Home], 100.0);
    EXPECT_EQ(core.inflightOps(), 0u);
}

TEST(OutOfOrder, RobWindowGatesDistantInstructions)
{
    OutOfOrderCore core(smallOoo()); // ROB = 8
    core.addAccess(false, missLatency(1000));
    // 7 more instructions fit in the window without stalling...
    core.addCompute(7);
    EXPECT_EQ(core.now(), 8u);
    // ...but the 9th instruction must wait for the miss to retire.
    core.addAccess(false, missLatency(0));
    EXPECT_GE(core.now(), 1001u);
    EXPECT_GT(core.breakdown()[Component::l1ToL2Home], 900.0);
}

TEST(OutOfOrder, LoadQueueLimitsOutstandingLoads)
{
    OutOfOrderCore core(smallOoo()); // LQ = 4
    for (int i = 0; i < 4; ++i) {
        core.addAccess(false, missLatency(1000));
    }
    EXPECT_EQ(core.now(), 4u); // all four overlap
    core.addAccess(false, missLatency(1000));
    // The fifth load waits for the first to complete (issued at 1).
    EXPECT_GE(core.now(), 1001u);
}

TEST(OutOfOrder, StoreQueueIndependentOfLoadQueue)
{
    OutOfOrderCore core(smallOoo()); // SQ = 2
    core.addAccess(true, missLatency(1000));
    core.addAccess(true, missLatency(1000));
    EXPECT_EQ(core.now(), 2u);
    core.addAccess(true, missLatency(10));
    EXPECT_GE(core.now(), 1001u); // third store gated by SQ
}

TEST(OutOfOrder, MixedLatencyAttributionFollowsBlocker)
{
    OutOfOrderCore core(smallOoo());
    AccessLatency lat;
    lat.sharers = 500; // an invalidation-bound access
    core.addAccess(false, lat);
    core.drain();
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l2HomeSharers], 500.0);
    EXPECT_DOUBLE_EQ(core.breakdown()[Component::l1ToL2Home], 0.0);
}

TEST(OutOfOrder, LongComputeRetiresWindow)
{
    OutOfOrderCore core(smallOoo());
    core.addAccess(false, missLatency(50));
    core.addCompute(100); // far exceeds the miss latency and the ROB
    const std::uint64_t before = core.now();
    core.addAccess(false, missLatency(0));
    // No stall: the earlier miss completed during the compute stretch.
    EXPECT_EQ(core.now(), before + 1);
}

TEST(OutOfOrder, FactoryPicksConfiguredModel)
{
    Config cfg = Config::futuristic256(CoreType::outOfOrder);
    auto core = CoreModel::create(cfg);
    core->addAccess(false, missLatency(100));
    EXPECT_EQ(core->now(), 1u); // hidden => OOO model

    cfg.core_type = CoreType::inOrder;
    auto in_order = CoreModel::create(cfg);
    in_order->addAccess(false, missLatency(100));
    EXPECT_EQ(in_order->now(), 101u);
}

} // namespace
} // namespace crono::sim

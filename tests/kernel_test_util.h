/**
 * @file
 * Shared fixtures for the kernel test suites: a catalog of small test
 * graphs and parameter generators for (graph, thread-count) sweeps.
 */

#ifndef CRONO_TESTS_KERNEL_TEST_UTIL_H_
#define CRONO_TESTS_KERNEL_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/generators.h"
#include "runtime/executor.h"
#include "sim/machine.h"

namespace crono::test {

/** Named test-graph factory. */
inline graph::Graph
makeGraph(const std::string& name)
{
    namespace gen = graph::generators;
    if (name == "path") {
        return gen::path(40);
    }
    if (name == "ring") {
        return gen::ring(37);
    }
    if (name == "star") {
        return gen::star(50);
    }
    if (name == "grid") {
        return gen::grid(8, 7);
    }
    if (name == "complete") {
        return gen::complete(12);
    }
    if (name == "cliques") {
        return gen::cliqueChain(5, 6, false);
    }
    if (name == "linked-cliques") {
        return gen::cliqueChain(5, 6, true);
    }
    if (name == "sparse") {
        return gen::uniformRandom(300, 1200, 32, 11);
    }
    if (name == "road") {
        return gen::roadNetwork(18, 18, 13);
    }
    if (name == "social") {
        return gen::socialNetwork(8, 6, 17);
    }
    ADD_FAILURE() << "unknown graph " << name;
    return gen::path(2);
}

/** All catalog names (dense coverage for parameterized suites). */
inline std::vector<std::string>
allGraphNames()
{
    return {"path",    "ring",   "star",           "grid",
            "complete", "cliques", "linked-cliques", "sparse",
            "road",    "social"};
}

/** (graph name, thread count) parameter. */
using GraphThreads = std::tuple<std::string, int>;

inline std::string
graphThreadsName(const ::testing::TestParamInfo<GraphThreads>& info)
{
    std::string name = std::get<0>(info.param) + "_t" +
                       std::to_string(std::get<1>(info.param));
    for (char& c : name) {
        if (c == '-') {
            c = '_'; // gtest parameter names must be alphanumeric
        }
    }
    return name;
}

/** A small simulated machine for kernel-on-simulator checks. */
inline sim::Config
smallSimConfig()
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 8;
    return cfg;
}

} // namespace crono::test

#endif // CRONO_TESTS_KERNEL_TEST_UTIL_H_

/**
 * @file
 * Graph I/O tests: edge-list round trips, DIMACS and MatrixMarket
 * parsing, error handling for malformed inputs, and the buffered
 * scanner's corner cases (CRLF endings, long lines, load telemetry).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "obs/telemetry.h"

namespace crono::graph {
namespace {

namespace gen = generators;

bool
sameGraph(const Graph& a, const Graph& b)
{
    return a.numVertices() == b.numVertices() &&
           a.rawOffsets() == b.rawOffsets() &&
           a.rawNeighbors() == b.rawNeighbors() &&
           a.rawWeights() == b.rawWeights();
}

TEST(GraphIo, EdgeListRoundTripSmall)
{
    const Graph g = gen::ring(8);
    std::stringstream s;
    io::writeEdgeList(s, g);
    const Graph back = io::readEdgeList(s);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, EdgeListRoundTripRandom)
{
    const Graph g = gen::uniformRandom(200, 1000, 50, 4);
    std::stringstream s;
    io::writeEdgeList(s, g);
    const Graph back = io::readEdgeList(s);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, EdgeListSkipsComments)
{
    std::stringstream s("# a comment\nel 3 1\n# another\n0 1 5\n1 2 6\n");
    const Graph g = io::readEdgeList(s);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(2, 1));
}

TEST(GraphIo, EdgeListDirectedHeader)
{
    std::stringstream s("el 3 0\n0 1 5\n");
    const Graph g = io::readEdgeList(s);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
}

TEST(GraphIo, EdgeListRejectsMissingHeader)
{
    std::stringstream s("0 1 5\n");
    EXPECT_THROW(io::readEdgeList(s), std::runtime_error);
}

TEST(GraphIo, EdgeListRejectsOutOfRangeVertex)
{
    std::stringstream s("el 3 1\n0 9 5\n");
    EXPECT_THROW(io::readEdgeList(s), std::runtime_error);
}

TEST(GraphIo, EdgeListRejectsMalformedEdge)
{
    std::stringstream s("el 3 1\n0 zebra 5\n");
    EXPECT_THROW(io::readEdgeList(s), std::runtime_error);
}

TEST(GraphIo, DimacsParsesOneIndexedArcs)
{
    std::stringstream s("c road network fragment\n"
                        "p sp 4 3\n"
                        "a 1 2 10\n"
                        "a 2 3 20\n"
                        "a 3 4 30\n");
    const Graph g = io::readDimacs(s);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(3, 2));
    EXPECT_EQ(g.weights(0)[0], 10u);
}

TEST(GraphIo, DimacsRejectsArcBeforeProblem)
{
    std::stringstream s("a 1 2 10\n");
    EXPECT_THROW(io::readDimacs(s), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsZeroIndexedArc)
{
    std::stringstream s("p sp 4 1\na 0 2 10\n");
    EXPECT_THROW(io::readDimacs(s), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsUnknownLine)
{
    std::stringstream s("p sp 2 1\nq 1 2 3\n");
    EXPECT_THROW(io::readDimacs(s), std::runtime_error);
}

TEST(GraphIo, EdgeListAcceptsCrLfLineEndings)
{
    std::stringstream s("el 3 1\r\n0 1 5\r\n1 2 6\r\n");
    const Graph g = io::readEdgeList(s);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(2, 1));
}

TEST(GraphIo, EdgeListAcceptsVeryLongCommentLine)
{
    // Exercises the chunked scanner's buffer-doubling path for lines
    // longer than its refill granularity would otherwise hold.
    std::string text = "# ";
    text.append(1 << 16, 'x');
    text += "\nel 2 1\n0 1 7\n";
    std::stringstream s(text);
    const Graph g = io::readEdgeList(s);
    EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(GraphIo, EdgeListLargeRoundTrip)
{
    // Big enough to span multiple scanner refills when chunked.
    const Graph g = gen::uniformRandom(5000, 60000, 200, 11);
    std::stringstream s;
    io::writeEdgeList(s, g);
    const Graph back = io::readEdgeList(s);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, MatrixMarketParsesGeneralInteger)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "% a comment\n"
                        "3 3 3\n"
                        "1 2 5\n"
                        "2 3 6\n"
                        "3 1 7\n");
    const Graph g = io::readMatrixMarket(s);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0)); // general = directed
    EXPECT_EQ(g.weights(0)[0], 5u);
}

TEST(GraphIo, MatrixMarketSymmetricMirrorsEdges)
{
    std::stringstream s("%%MatrixMarket matrix coordinate real symmetric\n"
                        "3 3 2\n"
                        "2 1 2.6\n"
                        "3 1 0.2\n");
    const Graph g = io::readMatrixMarket(s);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_EQ(g.weights(1)[0], 3u); // 2.6 rounds to 3
    EXPECT_EQ(g.weights(2)[0], 1u); // |0.2| rounds to 0, clamps to 1
}

TEST(GraphIo, MatrixMarketPatternEntriesWeighOne)
{
    std::stringstream s("%%MatrixMarket matrix coordinate pattern general\n"
                        "2 2 1\n"
                        "1 2\n");
    const Graph g = io::readMatrixMarket(s);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_EQ(g.weights(0)[0], 1u);
}

TEST(GraphIo, MatrixMarketDropsDiagonalAndKeepsMinDuplicate)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "2 2 4\n"
                        "1 1 9\n"
                        "1 2 8\n"
                        "1 2 3\n"
                        "2 2 4\n");
    const Graph g = io::readMatrixMarket(s);
    EXPECT_FALSE(g.hasEdge(0, 0));
    ASSERT_EQ(g.neighbors(0).size(), 1u);
    EXPECT_EQ(g.weights(0)[0], 3u);
}

TEST(GraphIo, MatrixMarketRejectsBadBanner)
{
    std::stringstream s("%%MatrixMarket matrix array real general\n"
                        "2 2 1\n1 2 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsNonSquare)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "2 3 1\n1 2 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsTruncatedEntries)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "3 3 2\n1 2 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsExtraEntries)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "3 3 1\n1 2 1\n2 3 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsZeroIndex)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "2 2 1\n0 2 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsOutOfRangeIndex)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "2 2 1\n1 5 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsTrailingJunk)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "2 2 1\n1 2 1 junk\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketRejectsNonNumericEntry)
{
    std::stringstream s("%%MatrixMarket matrix coordinate integer general\n"
                        "2 2 1\n1 zebra 1\n");
    EXPECT_THROW(io::readMatrixMarket(s), std::runtime_error);
}

TEST(GraphIo, MatrixMarketFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "crono_io_test.mtx";
    {
        std::ofstream out(path);
        out << "%%MatrixMarket matrix coordinate integer symmetric\n"
            << "4 4 3\n2 1 5\n3 2 6\n4 3 7\n";
    }
    const Graph g = io::loadMatrixMarket(path);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
}

TEST(GraphIo, LoadRecordsParseTimeCounter)
{
    obs::TelemetrySession session;
    const Graph g = gen::grid(4, 4);
    const std::string path = ::testing::TempDir() + "crono_io_load.el";
    io::saveEdgeList(path, g);
    const Graph back = io::loadEdgeList(path);
    EXPECT_TRUE(sameGraph(g, back));
    // The file wrapper records (ceil-to-ms) parse wall-clock.
    EXPECT_GE(session.recorder().totalCounter(obs::Counter::kLoadMs), 1u);
}

TEST(GraphIo, FileRoundTrip)
{
    const Graph g = gen::grid(5, 5);
    const std::string path = ::testing::TempDir() + "crono_io_test.el";
    io::saveEdgeList(path, g);
    const Graph back = io::loadEdgeList(path);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, LoadMissingFileThrows)
{
    EXPECT_THROW(io::loadEdgeList("/nonexistent/road.el"),
                 std::runtime_error);
    EXPECT_THROW(io::loadDimacs("/nonexistent/road.gr"),
                 std::runtime_error);
}

} // namespace
} // namespace crono::graph

/**
 * @file
 * Graph I/O tests: edge-list round trips, DIMACS parsing, and error
 * handling for malformed inputs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace crono::graph {
namespace {

namespace gen = generators;

bool
sameGraph(const Graph& a, const Graph& b)
{
    return a.numVertices() == b.numVertices() &&
           a.rawOffsets() == b.rawOffsets() &&
           a.rawNeighbors() == b.rawNeighbors() &&
           a.rawWeights() == b.rawWeights();
}

TEST(GraphIo, EdgeListRoundTripSmall)
{
    const Graph g = gen::ring(8);
    std::stringstream s;
    io::writeEdgeList(s, g);
    const Graph back = io::readEdgeList(s);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, EdgeListRoundTripRandom)
{
    const Graph g = gen::uniformRandom(200, 1000, 50, 4);
    std::stringstream s;
    io::writeEdgeList(s, g);
    const Graph back = io::readEdgeList(s);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, EdgeListSkipsComments)
{
    std::stringstream s("# a comment\nel 3 1\n# another\n0 1 5\n1 2 6\n");
    const Graph g = io::readEdgeList(s);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(2, 1));
}

TEST(GraphIo, EdgeListDirectedHeader)
{
    std::stringstream s("el 3 0\n0 1 5\n");
    const Graph g = io::readEdgeList(s);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
}

TEST(GraphIo, EdgeListRejectsMissingHeader)
{
    std::stringstream s("0 1 5\n");
    EXPECT_THROW(io::readEdgeList(s), std::runtime_error);
}

TEST(GraphIo, EdgeListRejectsOutOfRangeVertex)
{
    std::stringstream s("el 3 1\n0 9 5\n");
    EXPECT_THROW(io::readEdgeList(s), std::runtime_error);
}

TEST(GraphIo, EdgeListRejectsMalformedEdge)
{
    std::stringstream s("el 3 1\n0 zebra 5\n");
    EXPECT_THROW(io::readEdgeList(s), std::runtime_error);
}

TEST(GraphIo, DimacsParsesOneIndexedArcs)
{
    std::stringstream s("c road network fragment\n"
                        "p sp 4 3\n"
                        "a 1 2 10\n"
                        "a 2 3 20\n"
                        "a 3 4 30\n");
    const Graph g = io::readDimacs(s);
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(3, 2));
    EXPECT_EQ(g.weights(0)[0], 10u);
}

TEST(GraphIo, DimacsRejectsArcBeforeProblem)
{
    std::stringstream s("a 1 2 10\n");
    EXPECT_THROW(io::readDimacs(s), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsZeroIndexedArc)
{
    std::stringstream s("p sp 4 1\na 0 2 10\n");
    EXPECT_THROW(io::readDimacs(s), std::runtime_error);
}

TEST(GraphIo, DimacsRejectsUnknownLine)
{
    std::stringstream s("p sp 2 1\nq 1 2 3\n");
    EXPECT_THROW(io::readDimacs(s), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip)
{
    const Graph g = gen::grid(5, 5);
    const std::string path = ::testing::TempDir() + "crono_io_test.el";
    io::saveEdgeList(path, g);
    const Graph back = io::loadEdgeList(path);
    EXPECT_TRUE(sameGraph(g, back));
}

TEST(GraphIo, LoadMissingFileThrows)
{
    EXPECT_THROW(io::loadEdgeList("/nonexistent/road.el"),
                 std::runtime_error);
    EXPECT_THROW(io::loadDimacs("/nonexistent/road.gr"),
                 std::runtime_error);
}

} // namespace
} // namespace crono::graph

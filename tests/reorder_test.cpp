/**
 * @file
 * Unit tests for the reordering subsystem: VertexPermutation round
 * trips and composition, ordering-specific structure (degree-sort
 * monotonicity, hub clustering, RCM bandwidth reduction), blocked-CSR
 * edge-set equality with the plain CSR, and the relabeling invariance
 * of graph::stats (the regression ISSUE 5 asks for: any statistic that
 * silently depended on vertex labeling fails here).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "graph/blocked_csr.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "graph/stats.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

namespace gen = graph::generators;
using graph::Reordering;
using graph::VertexId;
using graph::VertexPermutation;

VertexPermutation
randomPermutation(VertexId n, std::uint64_t seed)
{
    AlignedVector<VertexId> order(n);
    std::iota(order.begin(), order.end(), VertexId{0});
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
    return VertexPermutation(std::move(order));
}

/** Multiset of (src, dst, weight) triples, the graph's identity. */
std::multiset<std::tuple<VertexId, VertexId, graph::Weight>>
edgeMultiset(const graph::Graph& g)
{
    std::multiset<std::tuple<VertexId, VertexId, graph::Weight>> edges;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const auto ns = g.neighbors(v);
        const auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            edges.emplace(v, ns[i], ws[i]);
        }
    }
    return edges;
}

TEST(VertexPermutation, RoundTripAndInverse)
{
    const VertexPermutation perm = randomPermutation(257, 5);
    for (VertexId v = 0; v < perm.size(); ++v) {
        EXPECT_EQ(perm.toOld(perm.toNew(v)), v);
        EXPECT_EQ(perm.toNew(perm.toOld(v)), v);
    }
    const VertexPermutation inv = perm.inverse();
    for (VertexId v = 0; v < perm.size(); ++v) {
        EXPECT_EQ(inv.toNew(v), perm.toOld(v));
        EXPECT_EQ(inv.toOld(v), perm.toNew(v));
    }
    EXPECT_TRUE(perm.composedWith(inv).isIdentity());
    EXPECT_TRUE(inv.composedWith(perm).isIdentity());
    EXPECT_FALSE(perm.isIdentity());
    EXPECT_TRUE(VertexPermutation::identity(64).isIdentity());
}

TEST(VertexPermutation, ComposeWithIdentityIsSelf)
{
    const VertexPermutation perm = randomPermutation(100, 7);
    const VertexPermutation id = VertexPermutation::identity(100);
    const VertexPermutation left = id.composedWith(perm);
    const VertexPermutation right = perm.composedWith(id);
    for (VertexId v = 0; v < perm.size(); ++v) {
        EXPECT_EQ(left.toNew(v), perm.toNew(v));
        EXPECT_EQ(right.toNew(v), perm.toNew(v));
    }
}

TEST(VertexPermutation, ValueRemappingRoundTrips)
{
    const VertexPermutation perm = randomPermutation(83, 11);
    AlignedVector<std::uint64_t> by_old(83);
    std::iota(by_old.begin(), by_old.end(), std::uint64_t{1000});
    const AlignedVector<std::uint64_t> by_new =
        perm.valuesToNew(std::span<const std::uint64_t>(by_old));
    for (VertexId v = 0; v < perm.size(); ++v) {
        EXPECT_EQ(by_new[perm.toNew(v)], by_old[v]);
    }
    const AlignedVector<std::uint64_t> back =
        perm.valuesToOld(std::span<const std::uint64_t>(by_new));
    EXPECT_EQ(back, by_old);
}

TEST(VertexPermutation, VertexValuedRemappingMapsBothSides)
{
    const VertexPermutation perm = randomPermutation(50, 3);
    // A parent array in the new space: new vertex v points at new
    // vertex v-1; vertex 0 carries the sentinel.
    AlignedVector<VertexId> parent_new(50);
    parent_new[0] = graph::kNoVertex;
    for (VertexId v = 1; v < 50; ++v) {
        parent_new[v] = v - 1;
    }
    const AlignedVector<VertexId> parent_old = perm.vertexValuesToOld(
        std::span<const VertexId>(parent_new), graph::kNoVertex);
    EXPECT_EQ(parent_old[perm.toOld(0)], graph::kNoVertex);
    for (VertexId v = 1; v < 50; ++v) {
        EXPECT_EQ(parent_old[perm.toOld(v)], perm.toOld(v - 1));
    }
}

TEST(Reorder, DegreeSortIsMonotone)
{
    const graph::Graph g = gen::socialNetwork(9, 6, 17);
    const graph::ReorderedGraph rg =
        graph::reorderGraph(g, Reordering::kDegreeSort);
    for (VertexId v = 1; v < rg.graph.numVertices(); ++v) {
        ASSERT_GE(rg.graph.degree(v - 1), rg.graph.degree(v)) << v;
    }
}

TEST(Reorder, HubClusterPacksHubsFirstKeepsColdOrder)
{
    const graph::Graph g = gen::socialNetwork(9, 6, 29);
    const VertexPermutation perm =
        graph::computeOrdering(g, Reordering::kHubCluster);
    const double avg = static_cast<double>(g.numEdges()) /
                       static_cast<double>(g.numVertices());
    bool in_cold_tail = false;
    VertexId prev_cold = 0;
    for (VertexId v = 0; v < perm.size(); ++v) {
        const VertexId old = perm.toOld(v);
        const bool hub = static_cast<double>(g.degree(old)) > avg;
        if (!hub) {
            if (in_cold_tail) {
                // Cold vertices keep their original relative order.
                ASSERT_LT(prev_cold, old) << "new id " << v;
            }
            in_cold_tail = true;
            prev_cold = old;
        } else {
            ASSERT_FALSE(in_cold_tail)
                << "hub at new id " << v << " after a cold vertex";
        }
    }
    EXPECT_TRUE(in_cold_tail); // both classes are non-empty
}

TEST(Reorder, RcmReducesLatticeBandwidth)
{
    // A label-shuffled lattice: the structure is a 16x16 grid (small
    // true bandwidth), the labeling is random (huge bandwidth). RCM
    // must recover most of the gap.
    const graph::Graph lattice = gen::grid(16, 16);
    const graph::Graph shuffled =
        graph::permuteGraph(lattice, randomPermutation(256, 99));
    const std::uint64_t before = graph::adjacencyBandwidth(shuffled);
    const graph::ReorderedGraph rcm =
        graph::reorderGraph(shuffled, Reordering::kRcm);
    const std::uint64_t after = graph::adjacencyBandwidth(rcm.graph);
    EXPECT_LT(after, before / 3)
        << "RCM bandwidth " << after << " vs shuffled " << before;
}

TEST(Reorder, PermuteGraphPreservesEdgesAndSortsRows)
{
    const graph::Graph g = gen::uniformRandom(300, 1500, 32, 11);
    const VertexPermutation perm = randomPermutation(300, 41);
    const graph::Graph pg = graph::permuteGraph(g, perm);
    ASSERT_EQ(pg.numVertices(), g.numVertices());
    ASSERT_EQ(pg.numEdges(), g.numEdges());
    std::multiset<std::tuple<VertexId, VertexId, graph::Weight>> expect;
    for (const auto& [s, d, w] : edgeMultiset(g)) {
        expect.emplace(perm.toNew(s), perm.toNew(d), w);
    }
    EXPECT_EQ(edgeMultiset(pg), expect);
    for (VertexId v = 0; v < pg.numVertices(); ++v) {
        const auto ns = pg.neighbors(v);
        EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end())) << "row " << v;
    }
}

TEST(Reorder, EveryOrderingIsAValidPermutation)
{
    const graph::Graph g = gen::socialNetwork(8, 5, 7);
    for (const Reordering r : graph::allReorderings()) {
        SCOPED_TRACE(graph::reorderingName(r));
        const VertexPermutation perm = graph::computeOrdering(g, r);
        ASSERT_EQ(perm.size(), g.numVertices());
        // The constructor validates bijectivity; exercise round trip.
        for (VertexId v = 0; v < perm.size(); ++v) {
            ASSERT_EQ(perm.toNew(perm.toOld(v)), v);
        }
    }
}

TEST(BlockedCsr, EdgeSetEqualsPlainCsr)
{
    const graph::Graph g = gen::socialNetwork(9, 6, 13);
    const graph::BlockedCsr layout(g, /*bin_bits=*/4);
    ASSERT_EQ(layout.numEdges(), g.numEdges());

    std::multiset<std::tuple<VertexId, VertexId, graph::Weight>> got;
    const auto& nbrs = layout.neighbors();
    const auto& wts = layout.weights();
    for (int b = 0; b < layout.numBins(); ++b) {
        const graph::BlockedCsr::Bin& bin = layout.bin(b);
        ASSERT_EQ(bin.offsets.size(), bin.dsts.size() + 1);
        EXPECT_TRUE(
            std::is_sorted(bin.dsts.begin(), bin.dsts.end())) << b;
        for (std::size_t i = 0; i < bin.dsts.size(); ++i) {
            ASSERT_LT(bin.offsets[i], bin.offsets[i + 1]) << b;
            for (graph::EdgeId e = bin.offsets[i];
                 e < bin.offsets[i + 1]; ++e) {
                // Every source in this bin falls in the bin's window.
                ASSERT_EQ(nbrs[e] >> layout.binBits(),
                          static_cast<VertexId>(b));
                got.emplace(bin.dsts[i], nbrs[e], wts[e]);
            }
        }
    }
    EXPECT_EQ(got, edgeMultiset(g));
    // binFills counts (bin, destination) entries; recompute it from
    // the plain CSR (distinct source bins per sorted row).
    std::uint64_t expect_fills = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const auto ns = g.neighbors(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            if (i == 0 || (ns[i] >> 4) != (ns[i - 1] >> 4)) {
                ++expect_fills;
            }
        }
    }
    EXPECT_EQ(layout.binFills(), expect_fills);
}

TEST(BlockedCsr, SingleBinDegeneratesToWholeGraph)
{
    const graph::Graph g = gen::roadNetwork(12, 12, 3);
    const unsigned bits = graph::BlockedCsr::defaultBinBits(g.numVertices());
    const graph::BlockedCsr layout(g, bits);
    EXPECT_EQ(layout.numBins(), 1);
    ASSERT_EQ(layout.numEdges(), g.numEdges());
}

TEST(BlockedCsr, BuilderAttachesLayoutAndReordering)
{
    graph::GraphBuilder b(6, true);
    b.addEdge(0, 1, 2);
    b.addEdge(1, 2, 3);
    b.addEdge(2, 3, 4);
    b.addEdge(3, 4, 5);
    b.addEdge(4, 5, 6);
    b.withReordering(Reordering::kBfs).withBlockedLayout();
    const graph::Graph g = std::move(b).build();
    ASSERT_NE(g.blockedLayout(), nullptr);
    EXPECT_EQ(g.blockedLayout()->numEdges(), g.numEdges());
    EXPECT_EQ(g.numVertices(), 6u);
    EXPECT_EQ(g.numEdges(), 10u);

    graph::GraphBuilder b2(4, true);
    b2.addEdge(0, 1);
    b2.addEdge(2, 3);
    b2.withReordering(Reordering::kDegreeSort);
    const graph::ReorderedGraph rg = std::move(b2).buildReordered();
    EXPECT_EQ(rg.perm.size(), 4u);
    EXPECT_EQ(rg.graph.numEdges(), 4u);
}

// ------------------------------------------------- stats invariance

/**
 * The ISSUE 5 regression: every statistic graph::stats computes must
 * be invariant under relabeling. Degree distribution, components,
 * gini, clustering and the pseudo-diameter are all exact (integer or
 * identical-operation-order float), so equality is exact too.
 */
class StatsInvariance : public ::testing::TestWithParam<std::string> {};

TEST_P(StatsInvariance, AllStatsSurviveRelabeling)
{
    const graph::Graph g = test::makeGraph(GetParam());
    const graph::GraphStats base = graph::computeStats(g);
    const std::vector<graph::EdgeId> base_hist = degreeHistogram(g);
    const double base_cc = graph::clusteringCoefficient(g);

    std::vector<VertexPermutation> perms;
    perms.push_back(randomPermutation(g.numVertices(), 1234));
    for (const Reordering r : graph::allReorderings()) {
        perms.push_back(graph::computeOrdering(g, r));
    }
    for (std::size_t i = 0; i < perms.size(); ++i) {
        SCOPED_TRACE(i);
        const graph::Graph pg = graph::permuteGraph(g, perms[i]);
        const graph::GraphStats s = graph::computeStats(pg);
        EXPECT_EQ(s.num_vertices, base.num_vertices);
        EXPECT_EQ(s.num_edge_slots, base.num_edge_slots);
        EXPECT_EQ(s.avg_degree, base.avg_degree);
        EXPECT_EQ(s.max_degree, base.max_degree);
        EXPECT_EQ(s.isolated_vertices, base.isolated_vertices);
        EXPECT_EQ(s.num_components, base.num_components);
        EXPECT_EQ(s.largest_component, base.largest_component);
        EXPECT_EQ(s.degree_gini, base.degree_gini);
        EXPECT_EQ(s.pseudo_diameter, base.pseudo_diameter);
        EXPECT_EQ(degreeHistogram(pg), base_hist);
        EXPECT_EQ(graph::clusteringCoefficient(pg), base_cc);
    }
}

INSTANTIATE_TEST_SUITE_P(Catalog, StatsInvariance,
                         ::testing::Values("road", "social", "sparse",
                                           "grid", "cliques", "star"));

TEST(StatsInvariance, PseudoDiameterMatchesKnownShapes)
{
    // Path of n vertices: diameter n-1, found exactly (the endpoints
    // are the min-degree seeds).
    EXPECT_EQ(graph::computeStats(gen::path(40)).pseudo_diameter, 39u);
    // Star: every leaf is two hops from every other leaf.
    EXPECT_EQ(graph::computeStats(gen::star(50)).pseudo_diameter, 2u);
    // Complete graph: everything is one hop apart.
    EXPECT_EQ(graph::computeStats(gen::complete(12)).pseudo_diameter, 1u);
    // Edgeless graph: defined as zero.
    graph::GraphBuilder b(5, true);
    EXPECT_EQ(graph::computeStats(std::move(b).build()).pseudo_diameter,
              0u);
}

} // namespace
} // namespace crono

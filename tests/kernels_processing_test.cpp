/**
 * @file
 * Graph-processing kernel tests: connected components, triangle
 * counting, PageRank and community detection, each against the
 * sequential reference plus invariant checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/community.h"
#include "graph/builder.h"
#include "core/connected_components.h"
#include "core/pagerank.h"
#include "core/sequential.h"
#include "core/triangle_count.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using test::GraphThreads;

class ConnCompParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(ConnCompParamTest, LabelsMatchFloodFill)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::connectedComponents(exec, threads, g);
    const auto expect = core::seq::componentLabels(g);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.label[v], expect[v]) << name << " v " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ConnCompParamTest,
    ::testing::Combine(::testing::Values("path", "ring", "star", "grid",
                                         "cliques", "linked-cliques",
                                         "sparse", "road", "social"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(ConnComp, ComponentCountAndEquivalenceProperty)
{
    const graph::Graph g = test::makeGraph("cliques");
    rt::NativeExecutor exec(4);
    const auto result = core::connectedComponents(exec, 4, g);
    EXPECT_EQ(result.num_components, 5u);
    // Property: endpoints of every edge share a label (the labeling is
    // a valid equivalence over connectivity).
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        for (graph::VertexId u : g.neighbors(v)) {
            EXPECT_EQ(result.label[v], result.label[u]);
        }
    }
}

TEST(ConnComp, IsolatedVerticesAreSingletons)
{
    graph::GraphBuilder b(5, true);
    b.addEdge(0, 1, 1);
    const graph::Graph g = std::move(b).build();
    rt::NativeExecutor exec(2);
    const auto result = core::connectedComponents(exec, 2, g);
    EXPECT_EQ(result.num_components, 4u);
    for (graph::VertexId v = 2; v < 5; ++v) {
        EXPECT_EQ(result.label[v], v);
    }
}

TEST(ConnComp, SimulatorMatchesReference)
{
    const graph::Graph g = test::makeGraph("linked-cliques");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::connectedComponents(machine, 8, g);
    EXPECT_EQ(result.num_components, 1u);
}

class TriCntParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(TriCntParamTest, TotalMatchesBruteForce)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::triangleCount(exec, threads, g);
    ASSERT_EQ(result.total, core::seq::triangleCount(g)) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, TriCntParamTest,
    ::testing::Combine(::testing::Values("path", "ring", "star", "grid",
                                         "complete", "cliques", "sparse",
                                         "social"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(TriCnt, KnownCounts)
{
    rt::NativeExecutor exec(4);
    // K12: C(12,3) triangles; ring/path/star: none.
    EXPECT_EQ(core::triangleCount(exec, 4, test::makeGraph("complete"))
                  .total,
              220u);
    EXPECT_EQ(core::triangleCount(exec, 4, test::makeGraph("ring")).total,
              0u);
    EXPECT_EQ(core::triangleCount(exec, 4, test::makeGraph("star")).total,
              0u);
    // 5 disjoint K6 cliques: 5 * C(6,3) = 100.
    EXPECT_EQ(
        core::triangleCount(exec, 4, test::makeGraph("cliques")).total,
        100u);
}

TEST(TriCnt, PerVertexCountsSumToThreeTimesTotal)
{
    const graph::Graph g = test::makeGraph("social");
    rt::NativeExecutor exec(4);
    const auto result = core::triangleCount(exec, 4, g);
    std::uint64_t sum = 0;
    for (std::uint64_t c : result.per_vertex) {
        sum += c;
    }
    EXPECT_EQ(sum, 3 * result.total);
}

TEST(TriCnt, SimulatorMatchesBruteForce)
{
    const graph::Graph g = test::makeGraph("cliques");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::triangleCount(machine, 8, g);
    EXPECT_EQ(result.total, 100u);
}

class PageRankParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(PageRankParamTest, MatchesSequentialIteration)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::pageRank(exec, threads, g, 8, 0.15);
    const auto expect = core::seq::pageRank(g, 8, 0.15);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_NEAR(result.rank[v], expect[v], 1e-9) << name << " " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, PageRankParamTest,
    ::testing::Combine(::testing::Values("path", "ring", "star", "grid",
                                         "complete", "sparse", "road",
                                         "social"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(PageRank, ProbabilityConservedOnDegreeRegularGraphs)
{
    // No isolated/dangling vertices: ranks stay a distribution.
    const graph::Graph g = test::makeGraph("ring");
    rt::NativeExecutor exec(4);
    const auto result = core::pageRank(exec, 4, g, 12, 0.15);
    double sum = 0.0;
    for (double r : result.rank) {
        sum += r;
        EXPECT_GT(r, 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, UniformOnSymmetricGraph)
{
    const graph::Graph g = test::makeGraph("ring");
    rt::NativeExecutor exec(4);
    const auto result = core::pageRank(exec, 4, g, 20, 0.15);
    const double uniform = 1.0 / g.numVertices();
    for (double r : result.rank) {
        EXPECT_NEAR(r, uniform, 1e-9);
    }
}

TEST(PageRank, StarCenterOutranksLeaves)
{
    const graph::Graph g = test::makeGraph("star");
    rt::NativeExecutor exec(4);
    const auto result = core::pageRank(exec, 4, g, 20, 0.15);
    for (graph::VertexId v = 1; v < g.numVertices(); ++v) {
        EXPECT_GT(result.rank[0], result.rank[v]);
    }
}

TEST(PageRank, SimulatorMatchesSequential)
{
    const graph::Graph g = test::makeGraph("grid");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::pageRank(machine, 8, g, 5, 0.15);
    const auto expect = core::seq::pageRank(g, 5, 0.15);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_NEAR(result.rank[v], expect[v], 1e-9);
    }
}

class CommunityParamTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(CommunityParamTest, ProducesValidNonNegativeModularity)
{
    const auto [name, threads] = GetParam();
    const graph::Graph g = test::makeGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::communityDetection(exec, threads, g, 12);
    // Labels must be in range and modularity in [-0.5, 1].
    for (graph::VertexId c : result.community) {
        EXPECT_LT(c, g.numVertices());
    }
    EXPECT_GE(result.modularity, -0.5);
    EXPECT_LE(result.modularity, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, CommunityParamTest,
    ::testing::Combine(::testing::Values("ring", "grid", "cliques",
                                         "linked-cliques", "sparse",
                                         "social"),
                       ::testing::Values(1, 2, 4, 8)),
    test::graphThreadsName);

TEST(Community, RecoversPlantedCliques)
{
    // 5 disjoint K6: optimal communities are exactly the cliques.
    const graph::Graph g = test::makeGraph("cliques");
    rt::NativeExecutor exec(4);
    const auto result = core::communityDetection(exec, 4, g, 16);
    for (graph::VertexId k = 0; k < 5; ++k) {
        const graph::VertexId rep = result.community[k * 6];
        for (graph::VertexId i = 1; i < 6; ++i) {
            EXPECT_EQ(result.community[k * 6 + i], rep);
        }
    }
    // Modularity of 5 equal disjoint communities: 1 - 1/5.
    EXPECT_NEAR(result.modularity, 0.8, 1e-9);
}

TEST(Community, ImprovesOverSingletonModularity)
{
    const graph::Graph g = test::makeGraph("linked-cliques");
    rt::NativeExecutor exec(4);
    const auto result = core::communityDetection(exec, 4, g, 16);
    // Singleton modularity is <= 0; the heuristic must beat it.
    EXPECT_GT(result.modularity, 0.3);
    EXPECT_GT(result.moves, 0u);
}

TEST(Community, EdgelessGraphStaysSingleton)
{
    graph::GraphBuilder b(6, true);
    const graph::Graph g = std::move(b).build();
    rt::NativeExecutor exec(2);
    const auto result = core::communityDetection(exec, 2, g, 4);
    for (graph::VertexId v = 0; v < 6; ++v) {
        EXPECT_EQ(result.community[v], v);
    }
    EXPECT_EQ(result.modularity, 0.0);
}

TEST(Community, SimulatorRecoversCliques)
{
    const graph::Graph g = test::makeGraph("cliques");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::communityDetection(machine, 8, g, 16);
    EXPECT_NEAR(result.modularity, 0.8, 1e-9);
}

} // namespace
} // namespace crono

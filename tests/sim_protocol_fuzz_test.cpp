/**
 * @file
 * Randomized MESI protocol checker: drives the memory system with
 * long random access sequences from random cores and re-validates the
 * global coherence invariants after every access:
 *
 *   - at most one core holds a line Modified or Exclusive;
 *   - an M/E copy never coexists with Shared copies elsewhere;
 *   - the directory state agrees with the aggregate of L1 states.
 *
 * Runs across several seeds, with and without ACKwise overflow
 * pressure, in classic, remote-only and adaptive coherence modes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/memory_system.h"

namespace crono::sim {
namespace {

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {
  protected:
    /** Check every invariant for @p line. */
    void
    checkLine(MemorySystem& mem, int cores, LineAddr line)
    {
        int modified = 0, exclusive = 0, shared = 0;
        for (int c = 0; c < cores; ++c) {
            switch (mem.l1State(c, line)) {
              case LineState::modified:
                ++modified;
                break;
              case LineState::exclusive:
                ++exclusive;
                break;
              case LineState::shared:
                ++shared;
                break;
              case LineState::invalid:
                break;
            }
        }
        ASSERT_LE(modified + exclusive, 1) << "line " << line;
        if (modified + exclusive == 1) {
            ASSERT_EQ(shared, 0) << "line " << line;
            ASSERT_EQ(mem.dirState(line), DirState::exclusive)
                << "line " << line;
        } else if (shared > 0) {
            ASSERT_EQ(mem.dirState(line), DirState::shared)
                << "line " << line;
        } else {
            ASSERT_EQ(mem.dirState(line), DirState::uncached)
                << "line " << line;
        }
    }

    void
    fuzz(Config cfg, int cores, std::size_t lines, int steps)
    {
        cfg.num_cores = cores;
        MemorySystem mem(cfg);
        Rng rng(GetParam());
        std::vector<LineAddr> sim_lines;
        for (std::size_t i = 0; i < lines; ++i) {
            sim_lines.push_back(mem.translateLine(0x1000 + i));
        }
        std::uint64_t t = 0;
        for (int step = 0; step < steps; ++step) {
            const auto idx = rng.nextBelow(lines);
            const int core = static_cast<int>(rng.nextBelow(cores));
            const bool store = rng.nextBelow(3) == 0;
            mem.access(core, (0x1000 + idx) * cfg.line_bytes, 8, store,
                       t);
            t += rng.nextBelow(50);
            checkLine(mem, cores, sim_lines[idx]);
        }
        // Final full sweep over every line.
        for (LineAddr line : sim_lines) {
            checkLine(mem, cores, line);
        }
        // Conservation: hits + misses == accesses after the storm.
        EXPECT_EQ(mem.l1dStats().hits + mem.l1dStats().totalMisses(),
                  mem.l1dStats().accesses);
    }
};

TEST_P(ProtocolFuzz, ClassicMesiFewLines)
{
    // Few lines, many cores: constant invalidation and recall churn,
    // guaranteed ACKwise overflow (9 cores > 4 pointers).
    fuzz(Config::futuristic256(), 9, 4, 4000);
}

TEST_P(ProtocolFuzz, ClassicMesiManyLines)
{
    // Enough lines to force L1 evictions into the mix.
    Config cfg = Config::futuristic256();
    cfg.l1d = CacheConfig{4 * 1024, 2, 1}; // tiny L1: heavy eviction
    fuzz(cfg, 6, 256, 4000);
}

TEST_P(ProtocolFuzz, SingleCoreDegenerate)
{
    fuzz(Config::futuristic256(), 1, 16, 1000);
}

TEST_P(ProtocolFuzz, AdaptiveLocalityMode)
{
    Config cfg = Config::futuristic256();
    cfg.locality_threshold = 2;
    fuzz(cfg, 8, 8, 3000);
}

TEST_P(ProtocolFuzz, RemoteOnlyModeNeverCaches)
{
    Config cfg = Config::futuristic256();
    cfg.l1_allocation = false;
    cfg.num_cores = 8;
    MemorySystem mem(cfg);
    Rng rng(GetParam());
    std::uint64_t t = 0;
    for (int step = 0; step < 2000; ++step) {
        const auto idx = rng.nextBelow(8);
        mem.access(static_cast<int>(rng.nextBelow(8)),
                   (0x1000 + idx) * cfg.line_bytes, 8,
                   rng.nextBelow(3) == 0, t);
        t += 20;
        ASSERT_EQ(mem.dirState(mem.translateLine(0x1000 + idx)),
                  DirState::uncached);
    }
    EXPECT_EQ(mem.l1dStats().hits, 0u);
    EXPECT_EQ(mem.directoryStats().invalidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(11, 23, 47, 89, 177));

} // namespace
} // namespace crono::sim

/**
 * @file
 * Wire-codec conformance + robustness tests for serve/protocol.h:
 * round-trips for every opcode, the malformed-frame taxonomy from the
 * header's robustness contract (truncation, count-field overruns,
 * unknown opcodes, trailing garbage, oversized length prefixes), and
 * a deterministic fuzz loop over random and mutated frames. The fuzz
 * loop's real teeth are the ASan/UBSan jobs in analysis.yml: a decoder
 * that over-reads, leaks, or trips UB on attacker bytes fails there
 * even when the status codes happen to look right.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "serve/protocol.h"
#include "serve/session.h"

namespace crono::serve {
namespace {

/** One representative request per opcode, every field exercised. */
std::vector<Request>
sampleRequests()
{
    std::vector<Request> reqs;
    Request r;
    r.id = 1;
    r.op = Op::kPing;
    reqs.push_back(r);

    r = {};
    r.id = 2;
    r.op = Op::kBfsDist;
    r.source = 7;
    r.target = 11;
    reqs.push_back(r);

    r = {};
    r.id = 3;
    r.op = Op::kSsspDist;
    r.source = 0;
    r.target = 0xffffff00u;
    reqs.push_back(r);

    r = {};
    r.id = 4;
    r.op = Op::kSsspBatch;
    r.source = 5;
    r.targets = {0, 1, 2, 0xdeadbeefu};
    reqs.push_back(r);

    r = {};
    r.id = 5;
    r.op = Op::kComponent;
    r.source = 42;
    reqs.push_back(r);

    r = {};
    r.id = 6;
    r.op = Op::kRankScore;
    r.source = 9;
    reqs.push_back(r);

    r = {};
    r.id = 7;
    r.op = Op::kTopDegree;
    r.k = 10;
    reqs.push_back(r);

    r = {};
    r.id = 8;
    r.op = Op::kTopRank;
    r.k = kMaxTopK;
    reqs.push_back(r);

    r = {};
    r.id = 9;
    r.op = Op::kIngest;
    r.edges = {{0, 1, 3}, {5, 5, 1}, {2, 7, 64}};
    reqs.push_back(r);

    r = {};
    r.id = 10;
    r.op = Op::kCompact;
    reqs.push_back(r);

    r = {};
    r.id = 11;
    r.op = Op::kStats;
    reqs.push_back(r);
    return reqs;
}

/** Strip the 4-byte length prefix off a single encoded frame. */
std::vector<std::uint8_t>
payloadOf(const std::vector<std::uint8_t>& frame)
{
    EXPECT_GE(frame.size(), 4u);
    return {frame.begin() + 4, frame.end()};
}

TEST(ServeProtocol, RequestRoundTripEveryOp)
{
    for (const Request& in : sampleRequests()) {
        std::vector<std::uint8_t> frame;
        encodeRequest(in, &frame);
        Request out;
        ASSERT_EQ(decodeRequest(payloadOf(frame), &out), Status::kOk)
            << opName(in.op);
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.op, in.op);
        EXPECT_EQ(out.source, in.source);
        EXPECT_EQ(out.target, in.target);
        EXPECT_EQ(out.k, in.k);
        EXPECT_EQ(out.targets, in.targets);
        ASSERT_EQ(out.edges.size(), in.edges.size());
        for (std::size_t i = 0; i < in.edges.size(); ++i) {
            EXPECT_EQ(out.edges[i].src, in.edges[i].src);
            EXPECT_EQ(out.edges[i].dst, in.edges[i].dst);
            EXPECT_EQ(out.edges[i].weight, in.edges[i].weight);
        }
    }
}

TEST(ServeProtocol, ResponseRoundTrip)
{
    Response in;
    in.id = 77;
    in.status = Status::kOk;
    in.epoch = 12345678901234ull;
    in.values = {0, 42, kNoValue};
    in.vertices = {3, 1, 4, 1, 5};
    in.text = "{\"schema\":\"crono.serve.v1\"}";
    std::vector<std::uint8_t> frame;
    encodeResponse(in, &frame);
    Response out;
    ASSERT_EQ(decodeResponse(payloadOf(frame), &out), Status::kOk);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.epoch, in.epoch);
    EXPECT_EQ(out.values, in.values);
    EXPECT_EQ(out.vertices, in.vertices);
    EXPECT_EQ(out.text, in.text);
}

TEST(ServeProtocol, EveryTruncationRejected)
{
    // Every proper prefix of a valid payload must decode to an error:
    // a count field that promises more bytes than remain is malformed,
    // never a short read or a partial fill.
    for (const Request& in : sampleRequests()) {
        std::vector<std::uint8_t> frame;
        encodeRequest(in, &frame);
        const std::vector<std::uint8_t> payload = payloadOf(frame);
        for (std::size_t cut = 0; cut < payload.size(); ++cut) {
            Request out;
            const Status s = decodeRequest(
                std::span(payload.data(), cut), &out);
            EXPECT_NE(s, Status::kOk)
                << opName(in.op) << " truncated to " << cut;
        }
    }
}

TEST(ServeProtocol, TrailingGarbageRejected)
{
    for (const Request& in : sampleRequests()) {
        std::vector<std::uint8_t> frame;
        encodeRequest(in, &frame);
        std::vector<std::uint8_t> payload = payloadOf(frame);
        payload.push_back(0xcc);
        Request out;
        EXPECT_EQ(decodeRequest(payload, &out), Status::kMalformed)
            << opName(in.op);
    }
}

TEST(ServeProtocol, UnknownOpcodeAttributed)
{
    std::vector<std::uint8_t> payload;
    // [id=99][opcode=200]
    payload = {99, 0, 0, 0, 200};
    Request out;
    EXPECT_EQ(decodeRequest(payload, &out), Status::kUnknownOp);
    EXPECT_EQ(out.id, 99u); // error can be attributed to the request
}

TEST(ServeProtocol, CountCeilingsEnforcedBeforeAllocation)
{
    // A claimed count over its ceiling is kTooLarge even when the
    // frame carries no bytes to back it — the decoder must not trust
    // the count enough to reserve for it.
    const auto put32 = [](std::uint32_t v,
                          std::vector<std::uint8_t>* out) {
        for (int i = 0; i < 4; ++i) {
            out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    };

    std::vector<std::uint8_t> payload;
    put32(1, &payload);
    payload.push_back(static_cast<std::uint8_t>(Op::kSsspBatch));
    put32(0, &payload);                    // source
    put32(kMaxBatchTargets + 1, &payload); // count over ceiling
    Request out;
    EXPECT_EQ(decodeRequest(payload, &out), Status::kTooLarge);

    payload.clear();
    put32(2, &payload);
    payload.push_back(static_cast<std::uint8_t>(Op::kIngest));
    put32(kMaxIngestEdges + 1, &payload);
    EXPECT_EQ(decodeRequest(payload, &out), Status::kTooLarge);

    payload.clear();
    put32(3, &payload);
    payload.push_back(static_cast<std::uint8_t>(Op::kTopDegree));
    put32(kMaxTopK + 1, &payload);
    EXPECT_EQ(decodeRequest(payload, &out), Status::kTooLarge);

    // Under the ceiling but over the bytes present: malformed.
    payload.clear();
    put32(4, &payload);
    payload.push_back(static_cast<std::uint8_t>(Op::kSsspBatch));
    put32(0, &payload);
    put32(100, &payload); // claims 400 bytes; zero follow
    EXPECT_EQ(decodeRequest(payload, &out), Status::kMalformed);
}

TEST(ServeProtocol, FrameSplitterByteAtATime)
{
    std::vector<std::uint8_t> wire;
    const std::vector<Request> reqs = sampleRequests();
    for (const Request& r : reqs) {
        encodeRequest(r, &wire);
    }
    FrameSplitter splitter;
    std::size_t decoded = 0;
    for (const std::uint8_t byte : wire) {
        splitter.feed(std::span(&byte, 1));
        while (auto payload = splitter.next()) {
            Request out;
            ASSERT_EQ(decodeRequest(*payload, &out), Status::kOk);
            EXPECT_EQ(out.op, reqs[decoded].op);
            ++decoded;
        }
    }
    EXPECT_EQ(decoded, reqs.size());
    EXPECT_EQ(splitter.pending(), 0u);
    EXPECT_FALSE(splitter.poisoned());
}

TEST(ServeProtocol, OversizedLengthPrefixPoisons)
{
    FrameSplitter splitter;
    const std::uint32_t evil = kMaxFrameBytes + 1;
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < 4; ++i) {
        wire.push_back(static_cast<std::uint8_t>(evil >> (8 * i)));
    }
    splitter.feed(wire);
    EXPECT_FALSE(splitter.next().has_value());
    EXPECT_TRUE(splitter.poisoned());
    // Poisoned is terminal: further feeds are dropped, next() never
    // yields again, and in particular nothing the size of the claimed
    // length was ever allocated.
    Request valid;
    valid.op = Op::kPing;
    std::vector<std::uint8_t> frame;
    encodeRequest(valid, &frame);
    splitter.feed(frame);
    EXPECT_FALSE(splitter.next().has_value());
    EXPECT_TRUE(splitter.poisoned());
}

TEST(ServeProtocol, SessionAnswersMalformedFramesAndCloses)
{
    Session session(/*id=*/1);

    // A frame carrying an unknown opcode: decoded, answered with an
    // error response, not surfaced as a request.
    std::vector<std::uint8_t> wire = {5, 0, 0, 0, // len prefix
                                      9, 0, 0, 0, // id = 9
                                      250};       // opcode 250
    std::vector<Request> requests;
    session.feed(wire, &requests);
    EXPECT_TRUE(requests.empty());
    EXPECT_FALSE(session.closing());
    std::vector<std::uint8_t> out = session.takeOutput();
    ASSERT_GE(out.size(), 4u);
    Response resp;
    ASSERT_EQ(decodeResponse(payloadOf(out), &resp), Status::kOk);
    EXPECT_EQ(resp.id, 9u);
    EXPECT_EQ(resp.status, Status::kUnknownOp);

    // An oversized length prefix: one kTooLarge response, then the
    // session reports closing and drops everything after.
    wire.clear();
    const std::uint32_t evil = kMaxFrameBytes + 7;
    for (int i = 0; i < 4; ++i) {
        wire.push_back(static_cast<std::uint8_t>(evil >> (8 * i)));
    }
    session.feed(wire, &requests);
    EXPECT_TRUE(requests.empty());
    EXPECT_TRUE(session.closing());
    out = session.takeOutput();
    ASSERT_GE(out.size(), 4u);
    ASSERT_EQ(decodeResponse(payloadOf(out), &resp), Status::kOk);
    EXPECT_EQ(resp.status, Status::kTooLarge);
}

TEST(ServeProtocol, FuzzRandomBytesNeverCrash)
{
    // Purely random payloads: the decoders must return *some* status
    // without reading out of bounds (ASan's job) and without leaving
    // partially-filled junk claiming to be valid.
    Rng rng(20260808);
    for (int round = 0; round < 2000; ++round) {
        const std::size_t len = rng.nextBelow(96);
        std::vector<std::uint8_t> payload(len);
        for (std::uint8_t& b : payload) {
            b = static_cast<std::uint8_t>(rng.next());
        }
        Request req;
        const Status rs = decodeRequest(payload, &req);
        if (rs == Status::kOk) {
            // Whatever decoded must re-encode to the same payload.
            std::vector<std::uint8_t> frame;
            encodeRequest(req, &frame);
            EXPECT_EQ(payloadOf(frame), payload);
        }
        Response resp;
        (void)decodeResponse(payload, &resp);
    }
}

TEST(ServeProtocol, FuzzMutatedValidFramesNeverCrash)
{
    // Start from valid frames, flip bytes and truncate: decoders and
    // splitter must survive; whenever the mutant still decodes kOk it
    // must round-trip byte-identically (no field silently ignored).
    Rng rng(424242);
    const std::vector<Request> reqs = sampleRequests();
    for (int round = 0; round < 2000; ++round) {
        const Request& base =
            reqs[rng.nextBelow(reqs.size())];
        std::vector<std::uint8_t> frame;
        encodeRequest(base, &frame);
        std::vector<std::uint8_t> payload = payloadOf(frame);
        const int flips = 1 + static_cast<int>(rng.nextBelow(4));
        for (int f = 0; f < flips && !payload.empty(); ++f) {
            payload[rng.nextBelow(payload.size())] =
                static_cast<std::uint8_t>(rng.next());
        }
        if (rng.nextBelow(4) == 0 && !payload.empty()) {
            payload.resize(rng.nextBelow(payload.size()));
        }
        Request out;
        const Status s = decodeRequest(payload, &out);
        if (s == Status::kOk) {
            std::vector<std::uint8_t> re;
            encodeRequest(out, &re);
            EXPECT_EQ(payloadOf(re), payload);
        }
    }
}

TEST(ServeProtocol, FuzzSplitterRandomChunksNeverCrash)
{
    // Random transport chunks (valid frames interleaved with garbage
    // at random chunk boundaries) through FrameSplitter + Session: no
    // crash, no unbounded buffering, and after a poison the session
    // stays closed.
    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
        Session session(static_cast<std::uint64_t>(round));
        std::vector<std::uint8_t> wire;
        for (int i = 0; i < 8; ++i) {
            if (rng.nextBelow(2) == 0) {
                Request r;
                r.id = static_cast<std::uint32_t>(i);
                r.op = static_cast<Op>(rng.nextBelow(kNumOps));
                encodeRequest(r, &wire);
            } else {
                const std::size_t n = rng.nextBelow(24);
                for (std::size_t b = 0; b < n; ++b) {
                    wire.push_back(
                        static_cast<std::uint8_t>(rng.next()));
                }
            }
        }
        std::size_t pos = 0;
        std::vector<Request> requests;
        while (pos < wire.size() && !session.closing()) {
            const std::size_t n = std::min(
                wire.size() - pos, 1 + rng.nextBelow(16));
            session.feed(std::span(wire.data() + pos, n), &requests);
            pos += n;
        }
        (void)session.takeOutput();
        session.markDone();
    }
}

} // namespace
} // namespace crono::serve

/**
 * @file
 * Unit tests for the graph substrate: CSR construction, the builder's
 * mirroring/dedup policies, and the dense adjacency matrix.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/adjacency_matrix.h"
#include "graph/builder.h"
#include "graph/graph.h"

namespace crono::graph {
namespace {

Graph
triangleGraph()
{
    GraphBuilder b(3, true);
    b.addEdge(0, 1, 5);
    b.addEdge(1, 2, 7);
    b.addEdge(0, 2, 9);
    return std::move(b).build();
}

TEST(GraphBuilder, MirrorsUndirectedEdges)
{
    const Graph g = triangleGraph();
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 6u); // 3 logical edges, both directions
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_TRUE(g.undirected());
}

TEST(GraphBuilder, DirectedKeepsSingleDirection)
{
    GraphBuilder b(3, /*undirected=*/false);
    b.addEdge(0, 1, 5);
    const Graph g = std::move(b).build();
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.undirected());
}

TEST(GraphBuilder, DropsSelfLoops)
{
    GraphBuilder b(2, true);
    b.addEdge(0, 0, 1);
    b.addEdge(0, 1, 2);
    const Graph g = std::move(b).build();
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_FALSE(g.hasEdge(0, 0));
}

TEST(GraphBuilder, DedupKeepsMinWeight)
{
    GraphBuilder b(2, true);
    b.addEdge(0, 1, 9);
    b.addEdge(0, 1, 3);
    b.addEdge(1, 0, 7);
    const Graph g = std::move(b).build(GraphBuilder::DedupPolicy::keepMin);
    ASSERT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.weights(0)[0], 3u);
    EXPECT_EQ(g.weights(1)[0], 3u); // mirror also deduped to min
}

TEST(GraphBuilder, KeepAllRetainsParallelEdges)
{
    GraphBuilder b(2, true);
    b.addEdge(0, 1, 9);
    b.addEdge(0, 1, 3);
    const Graph g = std::move(b).build(GraphBuilder::DedupPolicy::keepAll);
    EXPECT_EQ(g.degree(0), 2u);
}

TEST(GraphBuilder, EmptyGraph)
{
    GraphBuilder b(5, true);
    const Graph g = std::move(b).build();
    EXPECT_EQ(g.numVertices(), 5u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.maxDegree(), 0u);
    for (VertexId v = 0; v < 5; ++v) {
        EXPECT_TRUE(g.neighbors(v).empty());
    }
}

TEST(Graph, AdjacencyListsAreSorted)
{
    GraphBuilder b(6, true);
    b.addEdge(0, 5, 1);
    b.addEdge(0, 2, 1);
    b.addEdge(0, 4, 1);
    b.addEdge(0, 1, 1);
    const Graph g = std::move(b).build();
    auto ns = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end()));
}

TEST(Graph, DegreeAndSpansAgree)
{
    const Graph g = triangleGraph();
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(g.degree(v), g.neighbors(v).size());
        EXPECT_EQ(g.weights(v).size(), g.neighbors(v).size());
    }
    EXPECT_EQ(g.maxDegree(), 2u);
}

TEST(Graph, EdgeSlotAccessorsMatchSpans)
{
    const Graph g = triangleGraph();
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto ns = g.neighbors(v);
        auto ws = g.weights(v);
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const EdgeId e = g.firstEdge(v) + i;
            EXPECT_EQ(g.edgeTarget(e), ns[i]);
            EXPECT_EQ(g.edgeWeight(e), ws[i]);
        }
    }
}

TEST(Graph, WeightsFollowSameSlotAsNeighbors)
{
    const Graph g = triangleGraph();
    auto ns = g.neighbors(1);
    auto ws = g.weights(1);
    for (std::size_t i = 0; i < ns.size(); ++i) {
        if (ns[i] == 0) {
            EXPECT_EQ(ws[i], 5u);
        } else {
            EXPECT_EQ(ws[i], 7u);
        }
    }
}

TEST(Graph, RawArraysConsistentWithAccessors)
{
    const Graph g = triangleGraph();
    EXPECT_EQ(g.rawOffsets().size(), g.numVertices() + 1u);
    EXPECT_EQ(g.rawNeighbors().size(), g.numEdges());
    EXPECT_EQ(g.rawWeights().size(), g.numEdges());
    EXPECT_EQ(g.rawOffsets().back(), g.numEdges());
}

TEST(AdjacencyMatrix, DefaultIsDisconnected)
{
    AdjacencyMatrix m(4);
    for (VertexId i = 0; i < 4; ++i) {
        for (VertexId j = 0; j < 4; ++j) {
            EXPECT_EQ(m.at(i, j), AdjacencyMatrix::kInfWeight);
        }
    }
}

TEST(AdjacencyMatrix, SetAndGet)
{
    AdjacencyMatrix m(3);
    m.set(0, 2, 17);
    EXPECT_EQ(m.at(0, 2), 17u);
    EXPECT_EQ(m.at(2, 0), AdjacencyMatrix::kInfWeight); // not symmetric
}

TEST(AdjacencyMatrix, FromGraphDensifies)
{
    const AdjacencyMatrix m(triangleGraph());
    EXPECT_EQ(m.at(0, 1), 5u);
    EXPECT_EQ(m.at(1, 0), 5u);
    EXPECT_EQ(m.at(1, 2), 7u);
    EXPECT_EQ(m.at(0, 2), 9u);
    EXPECT_EQ(m.at(0, 0), AdjacencyMatrix::kInfWeight);
}

TEST(AdjacencyMatrix, FromGraphKeepsMinOfParallelEdges)
{
    GraphBuilder b(2, true);
    b.addEdge(0, 1, 9);
    b.addEdge(0, 1, 3);
    const Graph g = std::move(b).build(GraphBuilder::DedupPolicy::keepAll);
    const AdjacencyMatrix m(g);
    EXPECT_EQ(m.at(0, 1), 3u);
}

TEST(AdjacencyMatrix, RowSpansMatchCells)
{
    const AdjacencyMatrix m(triangleGraph());
    for (VertexId v = 0; v < 3; ++v) {
        auto row = m.row(v);
        ASSERT_EQ(row.size(), 3u);
        for (VertexId u = 0; u < 3; ++u) {
            EXPECT_EQ(row[u], m.at(v, u));
        }
    }
}

TEST(Aligned, VectorsStartOnCacheLines)
{
    AlignedVector<Dist> v(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) %
                  kCacheLineBytes,
              0u);
    AlignedVector<std::uint32_t> w(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) %
                  kCacheLineBytes,
              0u);
}

TEST(Aligned, PaddedOccupiesFullLine)
{
    EXPECT_EQ(sizeof(Padded<std::uint64_t>), kCacheLineBytes);
    EXPECT_EQ(alignof(Padded<std::uint64_t>), kCacheLineBytes);
}

} // namespace
} // namespace crono::graph

/**
 * @file
 * Whole-suite race-detector sweep: every benchmark kernel runs on a
 * simulated machine with the FastTrack/Eraser detector installed —
 * frontier-driven kernels under all four FrontierModes, PageRank
 * under both phase structures — and must produce zero unsuppressed
 * races. Any entry in scripts/suppressions/detector.allow needs a
 * justification comment, so the gate is "explained or absent".
 *
 * A seeded-race fixture then proves the sweep has teeth: a racy
 * region run under a ScopedHostSpan must be flagged with the right
 * kernel name and address.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/race_detector.h"
#include "analysis/report.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "obs/telemetry.h"
#include "sim/machine.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using analysis::RaceDetector;
using analysis::Suppressions;

/** Sweep-sized inputs: big enough for real contention patterns
 *  (work-stealing, pull rounds), small enough for shadow memory. */
core::WorkloadConfig
sweepConfig(core::GraphKind kind)
{
    core::WorkloadConfig wc;
    wc.kind = kind;
    wc.graph_vertices = 256;
    wc.edges_per_vertex = 6;
    wc.matrix_vertices = 20;
    wc.tsp_cities = 6;
    wc.mcs_pattern_vertices = 6;
    wc.mcs_target_vertices = 7;
    wc.mcs_labels = 2;
    wc.pr_iterations = 2;
    wc.comm_rounds = 3;
    return wc;
}

Suppressions
loadAllowlist()
{
    Suppressions s;
#ifdef CRONO_SUPPRESSIONS_FILE
    std::string err;
    EXPECT_TRUE(s.loadFile(CRONO_SUPPRESSIONS_FILE, &err)) << err;
#endif
    return s;
}

/** Run one benchmark in every mode combination it supports. */
void
sweepBenchmark(sim::Machine& machine, RaceDetector& det,
               const core::WorkloadSet& set,
               const core::BenchmarkInfo& info, const char* graph_tag)
{
    const bool frontier_driven =
        info.id == core::BenchmarkId::ssspDijk ||
        info.id == core::BenchmarkId::bfs ||
        info.id == core::BenchmarkId::connComp ||
        info.id == core::BenchmarkId::apsp ||
        info.id == core::BenchmarkId::betwCent;

    core::Workload w = set.forBenchmark(info.id);
    const auto runOne = [&](const std::string& mode_tag) {
        det.setRegionLabel(std::string(info.name) + "/" + graph_tag +
                           "/" + mode_tag);
        core::runBenchmark(info.id, machine, 8, w);
    };

    if (frontier_driven) {
        for (const rt::FrontierMode mode :
             {rt::FrontierMode::kFlagScan, rt::FrontierMode::kSparse,
              rt::FrontierMode::kAdaptive, rt::FrontierMode::kPull}) {
            w.frontier_mode = mode;
            runOne(rt::frontierModeName(mode));
        }
        if (info.id == core::BenchmarkId::ssspDijk) {
            // Delta-stepping variant: its intentionally racy probes
            // (bucket-range filter, pre-lock monotone filter) are
            // declared via readAtomic, so the sweep must stay clean.
            w.sssp_algo = core::SsspAlgo::kDeltaStep;
            runOne("delta");
            w.sssp_algo = core::SsspAlgo::kWorkList;
        }
    } else if (info.id == core::BenchmarkId::pageRank) {
        for (const core::PageRankMode mode :
             {core::PageRankMode::kScatter, core::PageRankMode::kGather}) {
            w.pr_mode = mode;
            runOne(core::pageRankModeName(mode));
        }
    } else {
        runOne("default");
    }
}

TEST(RaceDetectorSweep, AllKernelsAllModesHaveNoUnsuppressedRaces)
{
    sim::Machine machine(test::smallSimConfig());
    RaceDetector det(loadAllowlist());
    machine.setObserver(&det);

    for (const core::GraphKind kind :
         {core::GraphKind::road, core::GraphKind::social}) {
        const core::WorkloadSet set(sweepConfig(kind));
        for (const auto& info : core::allBenchmarks()) {
            sweepBenchmark(machine, det, set, info,
                           core::graphKindName(kind));
        }
    }

    EXPECT_EQ(det.unsuppressedCount(), 0u)
        << analysis::racesJson(det);
}

TEST(RaceDetectorSweep, ReorderedBlockedLayoutHasNoUnsuppressedRaces)
{
    // The blocked bin-major pull/gather paths change which thread
    // touches which (vertex, edge) pair; one full kernel sweep on a
    // degree-sorted social graph with the blocked layout attached
    // proves the new iteration order kept the ownership discipline.
    sim::Machine machine(test::smallSimConfig());
    RaceDetector det(loadAllowlist());
    machine.setObserver(&det);

    core::WorkloadConfig wc = sweepConfig(core::GraphKind::social);
    wc.reordering = graph::Reordering::kDegreeSort;
    wc.blocked_layout = true;
    const core::WorkloadSet set(wc);
    for (const auto& info : core::allBenchmarks()) {
        sweepBenchmark(machine, det, set, info, "social+degree+blocked");
    }

    EXPECT_EQ(det.unsuppressedCount(), 0u)
        << analysis::racesJson(det);
}

TEST(RaceDetectorSweep, SeededRaceFixtureIsAttributed)
{
    obs::TelemetrySession session;
    sim::Machine machine(test::smallSimConfig());
    RaceDetector det;
    machine.setObserver(&det);
    det.setRegionLabel("fixture/seeded");

    std::uint64_t shared_word = 0;
    {
        obs::ScopedHostSpan host("SEEDED_RACE_FIXTURE");
        machine.run(4, [&](sim::SimCtx& ctx) {
            // Deliberate unsynchronized read-modify-write.
            ctx.write(shared_word,
                      ctx.read(shared_word) + std::uint64_t(ctx.tid()));
        });
    }
    ASSERT_GE(det.totalRaces(), 1u);
    ASSERT_FALSE(det.races().empty());
    const analysis::RaceRecord& r = det.races().front();
    EXPECT_EQ(r.addr, reinterpret_cast<std::uintptr_t>(&shared_word));
    EXPECT_EQ(r.kernel, "SEEDED_RACE_FIXTURE");
    EXPECT_EQ(r.region, "fixture/seeded");
    EXPECT_TRUE(r.lockset_empty);
}

} // namespace
} // namespace crono

/**
 * @file
 * End-to-end smoke tests: every kernel runs on the native executor
 * and on the simulated machine, and both agree with the sequential
 * references. Deeper per-kernel suites live in kernels_*_test.cpp.
 */

#include <gtest/gtest.h>

#include "core/sequential.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "sim/machine.h"

namespace crono {
namespace {

using core::BenchmarkId;
namespace gen = graph::generators;

graph::Graph
testGraph()
{
    return gen::uniformRandom(200, 800, 32, 7);
}

sim::Config
smallSim()
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    return cfg;
}

TEST(SmokeNative, SsspMatchesDijkstra)
{
    const auto g = testGraph();
    rt::NativeExecutor exec(4);
    const auto result = core::sssp(exec, 4, g, 0);
    const auto expect = core::seq::sssp(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(result.dist[v], expect[v]) << "vertex " << v;
    }
}

TEST(SmokeSim, SsspMatchesDijkstra)
{
    const auto g = testGraph();
    sim::Machine machine(smallSim());
    const auto result = core::sssp(machine, 8, g, 0);
    const auto expect = core::seq::sssp(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(result.dist[v], expect[v]) << "vertex " << v;
    }
    EXPECT_GT(machine.lastStats().completion_cycles, 0u);
}

TEST(SmokeNative, AllBenchmarksRun)
{
    core::WorkloadConfig cfg;
    cfg.graph_vertices = 256;
    cfg.edges_per_vertex = 6;
    cfg.matrix_vertices = 24;
    cfg.tsp_cities = 7;
    cfg.pr_iterations = 3;
    cfg.comm_rounds = 4;
    const core::WorkloadSet set(cfg);
    rt::NativeExecutor exec(4);
    for (const auto& info : core::allBenchmarks()) {
        const auto run = core::runBenchmark(info.id, exec, 4,
                                            set.forBenchmark(info.id));
        EXPECT_EQ(run.thread_ops.size(), 4u) << info.name;
        EXPECT_GT(run.thread_ops[0], 0u) << info.name;
    }
}

TEST(SmokeSim, AllBenchmarksRun)
{
    core::WorkloadConfig cfg;
    cfg.graph_vertices = 128;
    cfg.edges_per_vertex = 4;
    cfg.matrix_vertices = 16;
    cfg.tsp_cities = 6;
    cfg.pr_iterations = 2;
    cfg.comm_rounds = 3;
    const core::WorkloadSet set(cfg);
    sim::Machine machine(smallSim());
    for (const auto& info : core::allBenchmarks()) {
        const auto run = core::runBenchmark(info.id, machine, 8,
                                            set.forBenchmark(info.id));
        EXPECT_GT(run.time, 0.0) << info.name;
        const auto& st = machine.lastStats();
        EXPECT_GT(st.l1d.accesses, 0u) << info.name;
        // The breakdown must account for (at least) the completion
        // time summed across threads.
        EXPECT_GT(st.breakdown.total(), 0.0) << info.name;
    }
}

TEST(SmokeSim, DeterministicCycles)
{
    const auto g = gen::uniformRandom(128, 512, 16, 3);
    sim::Machine machine(smallSim());
    core::sssp(machine, 8, g, 0);
    const auto first = machine.lastStats().completion_cycles;
    core::sssp(machine, 8, g, 0);
    const auto second = machine.lastStats().completion_cycles;
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace crono

/**
 * @file
 * Tests of the ablation knobs and the architectural sensitivities the
 * experiments rely on: remote-access mode stays functionally correct
 * and eliminates invalidations; ACKwise-k and hop latency move timing
 * the right way; the OOO core never loses to in-order on streaming
 * work; the workload catalog composes with the registry.
 */

#include <gtest/gtest.h>

#include "core/sequential.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "sim/machine.h"

namespace crono {
namespace {

graph::Graph
testGraph()
{
    return graph::generators::uniformRandom(512, 4096, 32, 3);
}

TEST(RemoteAccessMode, ResultsStayCorrect)
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    cfg.l1_allocation = false;
    sim::Machine machine(cfg);
    const graph::Graph g = testGraph();
    const auto result = core::sssp(machine, 16, g, 0);
    const auto expect = core::seq::sssp(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.dist[v], expect[v]);
    }
}

TEST(RemoteAccessMode, NoInvalidationTraffic)
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    cfg.l1_allocation = false;
    sim::Machine machine(cfg);
    core::pageRank(machine, 16, testGraph(), 2);
    const auto& st = machine.lastStats();
    EXPECT_EQ(st.directory.invalidations, 0u);
    EXPECT_EQ(st.directory.broadcasts, 0u);
    EXPECT_EQ(st.l1d.hits, 0u); // nothing is privately cached
}

TEST(RemoteAccessMode, PrivateCachingWinsOnPrivateData)
{
    // APSP's per-thread scratch is high-locality: forbidding private
    // caching must slow it down substantially.
    const graph::AdjacencyMatrix m(
        graph::generators::uniformRandom(48, 400, 16, 4));
    sim::Config base = sim::Config::futuristic256();
    base.num_cores = 8;
    sim::Config remote = base;
    remote.l1_allocation = false;

    sim::Machine with_l1(base);
    core::apsp(with_l1, 8, m);
    sim::Machine without_l1(remote);
    core::apsp(without_l1, 8, m);
    EXPECT_GT(without_l1.lastStats().completion_cycles,
              2 * with_l1.lastStats().completion_cycles);
}

TEST(AckwiseSweep, FewerPointersMeanMoreBroadcasts)
{
    const graph::Graph g = testGraph();
    std::uint64_t broadcasts_k1 = 0, broadcasts_k8 = 0;
    for (int k : {1, 8}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.num_cores = 32;
        cfg.ackwise_pointers = k;
        sim::Machine machine(cfg);
        core::sssp(machine, 32, g, 0);
        (k == 1 ? broadcasts_k1 : broadcasts_k8) =
            machine.lastStats().directory.broadcasts;
    }
    EXPECT_GT(broadcasts_k1, broadcasts_k8);
}

TEST(HopLatency, TimingRespondsMonotonically)
{
    const graph::Graph g = testGraph();
    std::uint64_t previous = 0;
    for (std::uint32_t hop : {1u, 2u, 4u}) {
        sim::Config cfg = sim::Config::futuristic256();
        cfg.num_cores = 32;
        cfg.hop_cycles = hop;
        sim::Machine machine(cfg);
        core::bfs(machine, 32, g, 0);
        const std::uint64_t cycles =
            machine.lastStats().completion_cycles;
        EXPECT_GT(cycles, previous);
        previous = cycles;
    }
}

TEST(CoreTypes, OooNeverSlowerOnStreamingScan)
{
    // A pure streaming scan (APSP row sweeps) is the best case for
    // the windowed overlap model.
    const graph::AdjacencyMatrix m(
        graph::generators::uniformRandom(64, 512, 16, 9));
    std::uint64_t in_order = 0, ooo = 0;
    for (auto type : {sim::CoreType::inOrder, sim::CoreType::outOfOrder}) {
        sim::Config cfg = sim::Config::futuristic256(type);
        cfg.num_cores = 8;
        sim::Machine machine(cfg);
        core::apsp(machine, 8, m);
        (type == sim::CoreType::inOrder ? in_order : ooo) =
            machine.lastStats().completion_cycles;
    }
    EXPECT_LT(ooo, in_order);
}

TEST(EnergyParams, OverridesPropagate)
{
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 8;
    sim::Machine machine(cfg);
    machine.energyParams().dram_access_pj = 0.0;
    core::bfs(machine, 8, testGraph(), 0);
    EXPECT_DOUBLE_EQ(machine.lastStats().energy.dram, 0.0);
    EXPECT_GT(machine.lastStats().energy.l1d, 0.0);
}

TEST(Workloads, GraphFamiliesDifferStructurally)
{
    using core::GraphKind;
    const graph::Graph road = core::makeGraph(GraphKind::road, 1024, 8, 1);
    const graph::Graph social =
        core::makeGraph(GraphKind::social, 1024, 8, 1);
    // Road: bounded degree; social: heavy-tailed.
    EXPECT_LE(road.maxDegree(), 8u);
    EXPECT_GT(social.maxDegree(), 40u);
    EXPECT_STREQ(core::graphKindName(GraphKind::road), "road");
    EXPECT_STREQ(core::graphKindName(GraphKind::social), "social");
    EXPECT_STREQ(core::graphKindName(GraphKind::sparse), "sparse");
}

TEST(Workloads, RunBenchmarkHonorsTracker)
{
    core::WorkloadConfig wc;
    wc.graph_vertices = 256;
    wc.matrix_vertices = 16;
    wc.tsp_cities = 6;
    const core::WorkloadSet set(wc);
    rt::NativeExecutor exec(2);
    rt::ActiveTracker tracker;
    core::runBenchmark(core::BenchmarkId::ssspDijk, exec, 2,
                       set.forBenchmark(core::BenchmarkId::ssspDijk),
                       &tracker);
    EXPECT_GT(tracker.events(), 0u);
}

} // namespace
} // namespace crono

/**
 * @file
 * Generator tests: determinism in the seed, structural properties of
 * each input family (Table III stand-ins), and the stats module.
 */

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"

namespace crono::graph {
namespace {

namespace gen = generators;

TEST(Generators, UniformRandomDeterministicInSeed)
{
    const Graph a = gen::uniformRandom(500, 2000, 32, 9);
    const Graph b = gen::uniformRandom(500, 2000, 32, 9);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
    EXPECT_EQ(a.rawWeights(), b.rawWeights());
}

TEST(Generators, UniformRandomDiffersAcrossSeeds)
{
    const Graph a = gen::uniformRandom(500, 2000, 32, 9);
    const Graph b = gen::uniformRandom(500, 2000, 32, 10);
    EXPECT_NE(a.rawNeighbors(), b.rawNeighbors());
}

TEST(Generators, UniformRandomSizeAndWeights)
{
    const Graph g = gen::uniformRandom(1000, 8000, 16, 3);
    EXPECT_EQ(g.numVertices(), 1000u);
    // Self loops and duplicates are dropped: at most 2 * 8000 slots.
    EXPECT_LE(g.numEdges(), 16000u);
    EXPECT_GE(g.numEdges(), 14000u); // few collisions at this density
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (Weight w : g.weights(v)) {
            EXPECT_GE(w, 1u);
            EXPECT_LE(w, 16u);
        }
    }
}

TEST(Generators, RoadNetworkMatchesSnapDegreeProfile)
{
    const Graph g = gen::roadNetwork(64, 64, 11);
    const GraphStats s = computeStats(g);
    // SNAP road networks: avg degree ~2.6, tiny max degree, near-zero
    // degree skew. The lattice stand-in must reproduce that profile.
    EXPECT_GT(s.avg_degree, 2.0);
    EXPECT_LT(s.avg_degree, 3.6);
    EXPECT_LE(s.max_degree, 8u);
    EXPECT_LT(s.degree_gini, 0.35);
}

TEST(Generators, RoadNetworkDeterministic)
{
    const Graph a = gen::roadNetwork(32, 32, 5);
    const Graph b = gen::roadNetwork(32, 32, 5);
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
}

TEST(Generators, SocialNetworkIsSkewed)
{
    const Graph g = gen::socialNetwork(12, 14, 17);
    const GraphStats s = computeStats(g);
    EXPECT_EQ(g.numVertices(), 4096u);
    // Power-law stand-in: heavy maximum degree, high Gini coefficient
    // (the Facebook graph's skew is what drives its Table IV edge).
    EXPECT_GT(s.max_degree, 30 * static_cast<EdgeId>(s.avg_degree));
    EXPECT_GT(s.degree_gini, 0.45);
}

TEST(Generators, SocialNetworkDeterministic)
{
    const Graph a = gen::socialNetwork(10, 8, 5);
    const Graph b = gen::socialNetwork(10, 8, 5);
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
}

TEST(Generators, KroneckerSizeWeightsAndCleanliness)
{
    const Graph g = gen::kronecker(12, 16, 64, 21);
    EXPECT_EQ(g.numVertices(), 4096u);
    // Undirected mirror of n * edge_factor samples, minus collisions.
    EXPECT_LE(g.numEdges(), 2u * 4096u * 16u);
    EXPECT_GE(g.numEdges(), 4096u * 16u / 2u);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const auto nbrs = g.neighbors(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            EXPECT_NE(nbrs[i], v) << "self edge at " << v;
            if (i > 0) {
                // CSR adjacency is sorted; strict order = no duplicates.
                EXPECT_LT(nbrs[i - 1], nbrs[i]) << "duplicate at " << v;
            }
        }
        for (Weight w : g.weights(v)) {
            EXPECT_GE(w, 1u);
            EXPECT_LE(w, 64u);
        }
    }
}

TEST(Generators, KroneckerDegreeDistributionIsSkewed)
{
    // R-MAT with a=0.57 concentrates edges on low-numbered vertices:
    // the Graph500/GAP power-law profile, like the social stand-in.
    const Graph g = gen::kronecker(13, 16, 255, 7);
    const GraphStats s = computeStats(g);
    EXPECT_GT(s.max_degree, 20 * static_cast<EdgeId>(s.avg_degree));
    EXPECT_GT(s.degree_gini, 0.45);
}

TEST(Generators, KroneckerDeterministicInSeed)
{
    const Graph a = gen::kronecker(10, 8, 32, 5);
    const Graph b = gen::kronecker(10, 8, 32, 5);
    EXPECT_EQ(a.rawNeighbors(), b.rawNeighbors());
    EXPECT_EQ(a.rawWeights(), b.rawWeights());
    const Graph c = gen::kronecker(10, 8, 32, 6);
    EXPECT_NE(a.rawNeighbors(), c.rawNeighbors());
}

TEST(Generators, TspCitiesSymmetricWithZeroDiagonal)
{
    const AdjacencyMatrix m = gen::tspCities(16, 23);
    for (VertexId i = 0; i < 16; ++i) {
        EXPECT_EQ(m.at(i, i), 0u);
        for (VertexId j = 0; j < 16; ++j) {
            EXPECT_EQ(m.at(i, j), m.at(j, i));
            if (i != j) {
                EXPECT_GE(m.at(i, j), 1u);
            }
        }
    }
}

TEST(Generators, TspCitiesRespectTriangleInequalityApproximately)
{
    // Euclidean distances rounded to integers: the triangle inequality
    // can be violated by at most the rounding error (2).
    const AdjacencyMatrix m = gen::tspCities(12, 7);
    for (VertexId a = 0; a < 12; ++a) {
        for (VertexId b = 0; b < 12; ++b) {
            for (VertexId c = 0; c < 12; ++c) {
                EXPECT_LE(m.at(a, c), m.at(a, b) + m.at(b, c) + 2u);
            }
        }
    }
}

TEST(Generators, PathRingStarCompleteShapes)
{
    const Graph p = gen::path(5);
    EXPECT_EQ(p.numEdges(), 8u);
    EXPECT_EQ(p.degree(0), 1u);
    EXPECT_EQ(p.degree(2), 2u);

    const Graph r = gen::ring(6);
    for (VertexId v = 0; v < 6; ++v) {
        EXPECT_EQ(r.degree(v), 2u);
    }

    const Graph s = gen::star(7);
    EXPECT_EQ(s.degree(0), 6u);
    for (VertexId v = 1; v < 7; ++v) {
        EXPECT_EQ(s.degree(v), 1u);
    }

    const Graph k = gen::complete(5);
    for (VertexId v = 0; v < 5; ++v) {
        EXPECT_EQ(k.degree(v), 4u);
    }
}

TEST(Generators, GridIsConnectedLattice)
{
    const Graph g = gen::grid(4, 3);
    EXPECT_EQ(g.numVertices(), 12u);
    const GraphStats s = computeStats(g);
    EXPECT_EQ(s.num_components, 1u);
    EXPECT_EQ(s.max_degree, 4u);
}

TEST(Generators, CliqueChainComponents)
{
    const Graph g = gen::cliqueChain(4, 5, /*link_blocks=*/false);
    const GraphStats s = computeStats(g);
    EXPECT_EQ(s.num_components, 4u);
    EXPECT_EQ(s.largest_component, 5u);

    const Graph linked = gen::cliqueChain(4, 5, /*link_blocks=*/true);
    EXPECT_EQ(computeStats(linked).num_components, 1u);
}

TEST(Stats, DegreeHistogramSumsToVertices)
{
    const Graph g = gen::uniformRandom(300, 900, 8, 2);
    const auto hist = degreeHistogram(g);
    EdgeId total = 0;
    for (EdgeId count : hist) {
        total += count;
    }
    EXPECT_EQ(total, g.numVertices());
}

TEST(Stats, RegularGraphHasZeroGini)
{
    const GraphStats s = computeStats(gen::ring(32));
    EXPECT_DOUBLE_EQ(s.degree_gini, 0.0);
    EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(Stats, ClusteringCoefficientKnownValues)
{
    // Complete graph: every wedge closes. Ring/star: none do.
    EXPECT_DOUBLE_EQ(clusteringCoefficient(gen::complete(8)), 1.0);
    EXPECT_DOUBLE_EQ(clusteringCoefficient(gen::ring(12)), 0.0);
    EXPECT_DOUBLE_EQ(clusteringCoefficient(gen::star(12)), 0.0);
    EXPECT_DOUBLE_EQ(
        clusteringCoefficient(gen::cliqueChain(3, 5, false)), 1.0);
}

TEST(Stats, SocialGraphClustersMoreThanRandom)
{
    const double social =
        clusteringCoefficient(gen::socialNetwork(10, 8, 3));
    const double random =
        clusteringCoefficient(gen::uniformRandom(1024, 8192, 8, 3));
    EXPECT_GT(social, random);
}

TEST(Stats, FormatContainsName)
{
    const GraphStats s = computeStats(gen::ring(8));
    EXPECT_NE(formatStats("ring8", s).find("ring8"), std::string::npos);
}

} // namespace
} // namespace crono::graph

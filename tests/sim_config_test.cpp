/**
 * @file
 * Configuration, statistics-arithmetic and energy-model unit tests.
 */

#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/energy.h"
#include "sim/stats.h"

namespace crono::sim {
namespace {

TEST(Config, Futuristic256MatchesTableTwo)
{
    const Config c = Config::futuristic256();
    EXPECT_EQ(c.num_cores, 256);
    EXPECT_EQ(c.core_type, CoreType::inOrder);
    EXPECT_EQ(c.l1d.size_bytes, 32u * 1024);
    EXPECT_EQ(c.l1d.associativity, 4u);
    EXPECT_EQ(c.l1d.access_cycles, 1u);
    EXPECT_EQ(c.l2.size_bytes, 256u * 1024);
    EXPECT_EQ(c.l2.associativity, 8u);
    EXPECT_EQ(c.l2.access_cycles, 8u);
    EXPECT_EQ(c.ackwise_pointers, 4);
    EXPECT_EQ(c.num_mem_controllers, 8);
    EXPECT_EQ(c.dram_latency_cycles, 100u);
    EXPECT_DOUBLE_EQ(c.dram_bytes_per_cycle, 5.0);
    EXPECT_EQ(c.hop_cycles, 2u);
    EXPECT_EQ(c.flit_bits, 64u);
    EXPECT_EQ(c.ooo.rob_size, 168u);
    EXPECT_EQ(c.ooo.load_queue, 64u);
    EXPECT_EQ(c.ooo.store_queue, 48u);
    EXPECT_TRUE(c.l1_allocation);
}

TEST(Config, OooPresetSwitchesCoreType)
{
    const Config c = Config::futuristic256(CoreType::outOfOrder);
    EXPECT_EQ(c.core_type, CoreType::outOfOrder);
    EXPECT_NE(c.name.find("ooo"), std::string::npos);
}

TEST(Config, RealMachinePreset)
{
    const Config c = Config::realMachine();
    EXPECT_EQ(c.num_cores, 8); // 4 cores x 2-way SMT
    EXPECT_EQ(c.core_type, CoreType::outOfOrder);
    EXPECT_GT(c.l2.size_bytes, Config().l2.size_bytes);
    EXPECT_LT(c.dram_latency_cycles, 100u);
}

TEST(Config, MeshWidthCoversCores)
{
    Config c;
    c.num_cores = 256;
    EXPECT_EQ(c.meshWidth(), 16);
    c.num_cores = 64;
    EXPECT_EQ(c.meshWidth(), 8);
    c.num_cores = 5;
    EXPECT_EQ(c.meshWidth(), 3);
    c.num_cores = 1;
    EXPECT_EQ(c.meshWidth(), 1);
}

TEST(Config, DescribeMentionsKeyParameters)
{
    const std::string d = Config::futuristic256().describe();
    EXPECT_NE(d.find("256"), std::string::npos);
    EXPECT_NE(d.find("ACKwise4"), std::string::npos);
    EXPECT_NE(d.find("16x16 mesh"), std::string::npos);
}

TEST(CacheConfigTest, SetArithmetic)
{
    const CacheConfig c{32 * 1024, 4, 1};
    EXPECT_EQ(c.numSets(64), 128u);
}

TEST(Breakdown, ArithmeticAndNormalization)
{
    Breakdown a;
    a[Component::compute] = 30;
    a[Component::synchronization] = 10;
    Breakdown b;
    b[Component::compute] = 10;
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 50.0);
    const Breakdown n = a.normalized();
    EXPECT_DOUBLE_EQ(n[Component::compute], 0.8);
    EXPECT_DOUBLE_EQ(n[Component::synchronization], 0.2);
}

TEST(Breakdown, NormalizeEmptyIsZero)
{
    const Breakdown n = Breakdown{}.normalized();
    EXPECT_DOUBLE_EQ(n.total(), 0.0);
}

TEST(StatsArithmetic, CacheStatsAccumulate)
{
    CacheStats a;
    a.accesses = 100;
    a.hits = 80;
    a.misses[0] = 5;
    a.misses[1] = 10;
    a.misses[2] = 5;
    CacheStats b = a;
    b += a;
    EXPECT_EQ(b.accesses, 200u);
    EXPECT_EQ(b.totalMisses(), 40u);
    EXPECT_DOUBLE_EQ(a.missRate(), 0.2);
    EXPECT_DOUBLE_EQ(CacheStats{}.missRate(), 0.0);
}

TEST(StatsArithmetic, ComponentNamesMatchPaper)
{
    EXPECT_STREQ(componentName(Component::compute), "Compute");
    EXPECT_STREQ(componentName(Component::l1ToL2Home), "L1Cache-L2Home");
    EXPECT_STREQ(componentName(Component::l2HomeWaiting),
                 "L2Home-Waiting");
    EXPECT_STREQ(componentName(Component::l2HomeSharers),
                 "L2Home-Sharers");
    EXPECT_STREQ(componentName(Component::l2HomeOffChip),
                 "L2Home-OffChip");
    EXPECT_STREQ(componentName(Component::synchronization),
                 "Synchronization");
}

TEST(Energy, BucketsScaleWithCounters)
{
    EnergyParams p;
    CacheStats l1d;
    l1d.accesses = 1000;
    CacheStats l2;
    l2.accesses = 100;
    DirectoryStats dir;
    dir.lookups = 100;
    NetworkStats net;
    net.flit_hops = 5000;
    DramStats dram;
    dram.accesses = 10;
    const EnergyBreakdown e =
        computeEnergy(p, 2000, l1d, l2, dir, net, dram);
    EXPECT_DOUBLE_EQ(e.l1i, 2000 * p.l1i_access_pj);
    EXPECT_DOUBLE_EQ(e.l1d, 1000 * p.l1d_access_pj);
    EXPECT_DOUBLE_EQ(e.l2, 100 * p.l2_access_pj);
    EXPECT_DOUBLE_EQ(e.directory, 100 * p.directory_access_pj);
    EXPECT_DOUBLE_EQ(e.router, 5000 * p.router_per_flit_hop_pj);
    EXPECT_DOUBLE_EQ(e.link, 5000 * p.link_per_flit_hop_pj);
    EXPECT_DOUBLE_EQ(e.dram, 10 * p.dram_access_pj);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Energy, ZeroCountersGiveZeroEnergy)
{
    const EnergyBreakdown e = computeEnergy(
        EnergyParams{}, 0, CacheStats{}, CacheStats{}, DirectoryStats{},
        NetworkStats{}, DramStats{});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(StatsReport, DescribeIsComplete)
{
    SimRunStats st;
    st.completion_cycles = 1234;
    st.l1d.accesses = 10;
    const std::string d = st.describe();
    EXPECT_NE(d.find("1234"), std::string::npos);
    EXPECT_NE(d.find("L1D"), std::string::npos);
    EXPECT_NE(d.find("network"), std::string::npos);
}

} // namespace
} // namespace crono::sim

/**
 * @file
 * Adaptive locality-aware coherence tests (the Section VII-A
 * mechanism): lines are serviced remotely until they demonstrate
 * per-core reuse, then get private copies. Functional correctness,
 * the allocation gate, and the traffic trade-off are all checked.
 */

#include <gtest/gtest.h>

#include "core/pagerank.h"
#include "core/sequential.h"
#include "core/sssp.h"
#include "graph/generators.h"
#include "sim/machine.h"
#include "sim/memory_system.h"

namespace crono::sim {
namespace {

TEST(LocalityAware, LowReuseLinesStayRemote)
{
    Config cfg = Config::futuristic256();
    cfg.locality_threshold = 3;
    MemorySystem mem(cfg);
    const std::uintptr_t addr = 1000 * cfg.line_bytes;
    const LineAddr line = mem.translateLine(addr / cfg.line_bytes);

    // First three accesses: remote service, no private copy.
    for (int i = 0; i < 3; ++i) {
        mem.access(0, addr, 8, false, 100 * i);
        EXPECT_EQ(mem.l1State(0, line), LineState::invalid) << i;
    }
    // The fourth access crosses the threshold: line turns private.
    mem.access(0, addr, 8, false, 400);
    EXPECT_NE(mem.l1State(0, line), LineState::invalid);
    // ...and subsequent accesses hit in L1.
    const std::uint64_t hits = mem.l1dStats().hits;
    mem.access(0, addr, 8, false, 500);
    EXPECT_EQ(mem.l1dStats().hits, hits + 1);
}

TEST(LocalityAware, ThresholdZeroIsClassicMesi)
{
    Config cfg = Config::futuristic256();
    cfg.locality_threshold = 0;
    MemorySystem mem(cfg);
    const std::uintptr_t addr = 1000 * cfg.line_bytes;
    mem.access(0, addr, 8, false, 0);
    EXPECT_NE(mem.l1State(0, mem.translateLine(addr / cfg.line_bytes)),
              LineState::invalid);
}

TEST(LocalityAware, PerCoreDecision)
{
    Config cfg = Config::futuristic256();
    cfg.locality_threshold = 2;
    MemorySystem mem(cfg);
    const std::uintptr_t addr = 1000 * cfg.line_bytes;
    const LineAddr line = mem.translateLine(addr / cfg.line_bytes);

    // Core 0 earns a private copy; core 1 has not yet.
    for (int i = 0; i < 3; ++i) {
        mem.access(0, addr, 8, false, 10 * i);
    }
    mem.access(1, addr, 8, false, 100);
    EXPECT_NE(mem.l1State(0, line), LineState::invalid);
    EXPECT_EQ(mem.l1State(1, line), LineState::invalid);
}

TEST(LocalityAware, KernelsStayCorrect)
{
    Config cfg = Config::futuristic256();
    cfg.num_cores = 16;
    cfg.locality_threshold = 4;
    Machine machine(cfg);
    const graph::Graph g =
        graph::generators::uniformRandom(300, 1500, 24, 6);
    const auto result = core::sssp(machine, 16, g, 0);
    const auto expect = core::seq::sssp(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.dist[v], expect[v]);
    }
}

TEST(LocalityAware, ReducesInvalidationsOnSharedData)
{
    // PageRank's scatter traffic is invalidation-heavy under classic
    // MESI; the adaptive protocol must shrink invalidations (shared
    // low-locality accumulator lines stop being replicated).
    const graph::Graph g =
        graph::generators::uniformRandom(1024, 8192, 16, 8);
    std::uint64_t classic = 0, adaptive = 0;
    for (std::uint32_t threshold : {0u, 8u}) {
        Config cfg = Config::futuristic256();
        cfg.num_cores = 64;
        cfg.locality_threshold = threshold;
        Machine machine(cfg);
        core::pageRank(machine, 64, g, 2);
        (threshold == 0 ? classic : adaptive) =
            machine.lastStats().directory.invalidations;
    }
    EXPECT_LT(adaptive, classic);
}

} // namespace
} // namespace crono::sim

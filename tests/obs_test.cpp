/**
 * @file
 * Telemetry-layer tests: JSON writer/parser round trips, span ring
 * semantics, recorder counter aggregation, Chrome-trace export and
 * the stable report schemas ("crono.metrics.v1" / "crono.bench.v1").
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/sssp.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"
#include "runtime/executor.h"

namespace {

using namespace crono;

// ----------------------------------------------------------- JSON

TEST(JsonWriter, RoundTripsNestedDocument)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("name")
        .value("quote\" slash\\ tab\t")
        .key("count")
        .value(std::uint64_t{18446744073709551615ull})
        .key("ratio")
        .value(0.25)
        .key("flag")
        .value(true)
        .key("nothing")
        .null()
        .key("list")
        .beginArray()
        .value(1)
        .value(2)
        .beginObject()
        .key("deep")
        .value(-3.5)
        .endObject()
        .endArray()
        .endObject();

    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(w.str(), v, &err)) << err;
    EXPECT_EQ(v.find("name")->str, "quote\" slash\\ tab\t");
    // u64 max is above 2^53; the parser reads doubles, so only check
    // that the writer emitted it digit-exactly.
    EXPECT_NE(w.str().find("18446744073709551615"), std::string::npos);
    EXPECT_DOUBLE_EQ(v.find("ratio")->num, 0.25);
    EXPECT_TRUE(v.find("flag")->b);
    EXPECT_TRUE(v.find("nothing")->isNull());
    const obs::json::Value* list = v.find("list");
    ASSERT_TRUE(list != nullptr && list->isArray());
    ASSERT_EQ(list->arr.size(), 3u);
    EXPECT_DOUBLE_EQ(list->arr[2].find("deep")->num, -3.5);
}

TEST(JsonWriter, ClampsNonFiniteDoubles)
{
    obs::JsonWriter w;
    w.beginObject()
        .key("nan")
        .value(std::nan(""))
        .key("inf")
        .value(HUGE_VAL)
        .endObject();
    obs::json::Value v;
    ASSERT_TRUE(obs::json::parse(w.str(), v, nullptr));
    EXPECT_DOUBLE_EQ(v.find("nan")->num, 0.0);
    EXPECT_DOUBLE_EQ(v.find("inf")->num, 0.0);
}

TEST(JsonParse, RejectsMalformedInput)
{
    obs::json::Value v;
    EXPECT_FALSE(obs::json::parse("{", v, nullptr));
    EXPECT_FALSE(obs::json::parse("{}extra", v, nullptr));
    EXPECT_FALSE(obs::json::parse("{\"a\":}", v, nullptr));
    EXPECT_TRUE(obs::json::parse("[1, 2, 3]", v, nullptr));
    ASSERT_EQ(v.arr.size(), 3u);
    EXPECT_EQ(v.arr[1].asU64(), 2u);
}

// ---------------------------------------------------------- tracks

TEST(Track, RingOverwritesOldestAndCountsDrops)
{
    obs::Track t(16);
    for (std::uint64_t i = 0; i < 40; ++i) {
        t.record({i, i + 1, "span", i, obs::SpanCat::kRound});
    }
    EXPECT_EQ(t.recorded(), 40u);
    EXPECT_EQ(t.dropped(), 24u);
    const auto spans = t.spans();
    ASSERT_EQ(spans.size(), 16u);
    // Oldest-first, holding the most recent 16 spans (24..39).
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].arg, 24 + i);
    }
}

TEST(Recorder, AggregatesCountersAcrossTracks)
{
    obs::Recorder rec(64);
    rec.track(obs::TrackKind::kWorker, 0)
        ->add(obs::Counter::kRelaxations, 5);
    rec.track(obs::TrackKind::kWorker, 1)
        ->add(obs::Counter::kRelaxations, 7);
    rec.track(obs::TrackKind::kHost, 0)
        ->add(obs::Counter::kIterations, 2);
    EXPECT_EQ(rec.totalCounter(obs::Counter::kRelaxations), 12u);
    EXPECT_EQ(rec.totalCounter(obs::Counter::kIterations), 2u);
    EXPECT_EQ(rec.totalCounter(obs::Counter::kStealChunks), 0u);

    // Out-of-range tids record nothing instead of crashing.
    EXPECT_EQ(rec.track(obs::TrackKind::kWorker, -1), nullptr);
    EXPECT_EQ(rec.track(obs::TrackKind::kWorker,
                        obs::Recorder::kMaxTracksPerKind),
              nullptr);

    int tracks = 0;
    rec.forEachTrack(
        [&](obs::TrackKind, int, const obs::Track&) { ++tracks; });
    EXPECT_EQ(tracks, 3);
}

// ---------------------------------------------------- trace export

TEST(TraceExport, InstrumentedSsspProducesLoadableTrace)
{
#if defined(CRONO_TELEMETRY_DISABLED)
    GTEST_SKIP() << "telemetry compiled out (CRONO_TELEMETRY=OFF)";
#endif
    obs::TelemetrySession session;
    rt::NativeExecutor exec(4);
    const graph::Graph g = graph::generators::roadNetwork(64, 64, 3);
    core::sssp(exec, 4, g, 0, nullptr, rt::FrontierMode::kSparse);

    const std::string trace = obs::chromeTraceJson(session.recorder());
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(trace, v, &err)) << err;
    const obs::json::Value* events = v.find("traceEvents");
    ASSERT_TRUE(events != nullptr && events->isArray());

    std::set<std::string> cats;
    std::set<double> pids;
    for (const obs::json::Value& ev : events->arr) {
        const obs::json::Value* ph = ev.find("ph");
        ASSERT_TRUE(ph != nullptr);
        if (ph->str == "X") {
            cats.insert(ev.find("cat")->str);
            pids.insert(ev.find("pid")->num);
            // Normalized timestamps: non-negative, duration >= 0.
            EXPECT_GE(ev.find("ts")->num, 0.0);
            EXPECT_GE(ev.find("dur")->num, 0.0);
        }
    }
    // Acceptance: the trace carries at least round, barrier-wait and
    // kernel span categories (steals need contention to occur).
    EXPECT_TRUE(cats.count("round"));
    EXPECT_TRUE(cats.count("barrier-wait"));
    EXPECT_TRUE(cats.count("kernel"));
    // Host and worker tracks land in distinct trace processes.
    EXPECT_GE(pids.size(), 2u);
}

TEST(TraceExport, IdleSinkRecordsNothing)
{
    // No session installed: kernels run with a null sink.
    rt::NativeExecutor exec(2);
    const graph::Graph g = graph::generators::uniformRandom(256, 1024, 8, 1);
    core::sssp(exec, 2, g, 0);

    obs::Recorder empty;
    const std::string trace = obs::chromeTraceJson(empty);
    obs::json::Value v;
    ASSERT_TRUE(obs::json::parse(trace, v, nullptr));
    EXPECT_TRUE(v.find("traceEvents")->arr.empty());
}

// -------------------------------------------------------- schemas

TEST(MetricsReport, RoundTripsThroughSchema)
{
#if defined(CRONO_TELEMETRY_DISABLED)
    GTEST_SKIP() << "telemetry compiled out (CRONO_TELEMETRY=OFF)";
#endif
    obs::TelemetrySession session;
    rt::NativeExecutor exec(2);
    const graph::Graph g = graph::generators::roadNetwork(32, 32, 5);
    auto res = core::sssp(exec, 2, g, 0, nullptr,
                          rt::FrontierMode::kAdaptive);

    obs::MetricsReport report;
    report.kernel = "SSSP_DIJK";
    report.graph = "road(32,32)";
    report.threads = 2;
    report.frontier_mode = "adaptive";
    report.setRuntime(res.run);
    report.rounds = res.rounds;
    report.setCounters(session.recorder());

    sim::SimRunStats stats;
    stats.completion_cycles = 12345;
    stats.l1d.accesses = 1000;
    stats.l1d.hits = 900;
    stats.l1d.misses[0] = 60;
    stats.l1d.misses[1] = 30;
    stats.l1d.misses[2] = 10;
    stats.l2.accesses = 100;
    stats.breakdown[sim::Component::compute] = 5000.0;
    report.setSim(stats);

    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(report.toJson(), v, &err)) << err;
    EXPECT_EQ(v.find("schema")->str, "crono.metrics.v1");
    EXPECT_EQ(v.find("kernel")->str, "SSSP_DIJK");
    EXPECT_EQ(v.find("threads")->asU64(), 2u);

    const obs::json::Value* runtime = v.find("runtime");
    ASSERT_TRUE(runtime != nullptr);
    EXPECT_GT(runtime->find("time")->num, 0.0);
    EXPECT_EQ(runtime->find("rounds")->asU64(), res.rounds);

    const obs::json::Value* counters = v.find("counters");
    ASSERT_TRUE(counters != nullptr && counters->isObject());
    // Relaxations must be present (the road graph is connected).
    ASSERT_TRUE(counters->find("relaxations") != nullptr);
    EXPECT_GT(counters->find("relaxations")->asU64(), 0u);

    const obs::json::Value* simv = v.find("sim");
    ASSERT_TRUE(simv != nullptr && simv->isObject());
    EXPECT_EQ(simv->find("completion_cycles")->asU64(), 12345u);
    const obs::json::Value* l1d = simv->find("l1d");
    ASSERT_TRUE(l1d != nullptr);
    EXPECT_EQ(l1d->find("total_misses")->asU64(), 100u);
    EXPECT_DOUBLE_EQ(l1d->find("miss_rate")->num, 0.1);
}

TEST(MetricsReport, SimSectionNullWhenAbsent)
{
    obs::MetricsReport report;
    report.kernel = "BFS";
    obs::json::Value v;
    ASSERT_TRUE(obs::json::parse(report.toJson(), v, nullptr));
    EXPECT_TRUE(v.find("sim")->isNull());
}

TEST(BenchSuite, RoundTripsThroughSchema)
{
    obs::BenchResult row;
    row.name = "sssp/road/sparse/t4";
    row.kernel = "SSSP_DIJK";
    row.graph = "road(256,256)";
    row.vertices = 65536;
    row.edges = 261120;
    row.threads = 4;
    row.mode = "sparse";
    row.time_seconds = 0.125;
    row.edges_per_second = 2088960.0;
    row.variability = 0.05;
    row.rounds = 700;
    row.counters.emplace_back("relaxations", 70000u);

    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(
        obs::json::parse(obs::benchSuiteJson({row, row}), v, &err))
        << err;
    EXPECT_EQ(v.find("schema")->str, "crono.bench.v1");
    const obs::json::Value* results = v.find("results");
    ASSERT_TRUE(results != nullptr && results->isArray());
    ASSERT_EQ(results->arr.size(), 2u);
    const obs::json::Value& r0 = results->arr[0];
    EXPECT_EQ(r0.find("name")->str, "sssp/road/sparse/t4");
    EXPECT_EQ(r0.find("vertices")->asU64(), 65536u);
    EXPECT_DOUBLE_EQ(r0.find("time_seconds")->num, 0.125);
    EXPECT_EQ(r0.find("counters")->find("relaxations")->asU64(), 70000u);
}

} // namespace

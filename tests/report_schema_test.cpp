/**
 * @file
 * Schema smoke-test for every machine-readable report the bench
 * harnesses emit: each document must parse with the in-tree
 * obs::json::parse and carry its stable schema tag plus the fields
 * downstream tooling (BENCH_micro.json trajectory, table_reorder.json
 * speedup table) indexes on.
 *
 * Two modes:
 *  - self-contained (default): generate a crono.metrics.v1 document
 *    from a real instrumented run and a crono.bench.v1 document with
 *    reordering rows, write both to a temp dir, then validate every
 *    *.json found there;
 *  - CI sweep: when CRONO_REPORT_DIR is set (run_benches.sh --json=DIR
 *    output), validate every *.json the full bench sweep actually
 *    emitted instead.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile_report.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"
#include "serve/report.h"

#ifdef CRONO_HAVE_STATICLINT
#include "analysis/static/analyzer.h"
#endif

namespace crono {
namespace {

namespace fs = std::filesystem;

std::string
slurp(const fs::path& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Parse @p text; fail the test with @p label and the parser error. */
obs::json::Value
parseOrFail(const std::string& text, const std::string& label)
{
    obs::json::Value doc;
    std::string err;
    EXPECT_TRUE(obs::json::parse(text, doc, &err))
        << label << ": " << err;
    return doc;
}

void
expectString(const obs::json::Value& v, const char* key)
{
    const obs::json::Value* f = v.find(key);
    ASSERT_NE(f, nullptr) << key;
    EXPECT_TRUE(f->isString()) << key;
}

void
expectNumber(const obs::json::Value& v, const char* key)
{
    const obs::json::Value* f = v.find(key);
    ASSERT_NE(f, nullptr) << key;
    EXPECT_TRUE(f->isNumber()) << key;
}

/** Validate one crono.bench.v1 document. */
void
checkBenchDoc(const obs::json::Value& doc)
{
    const obs::json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "crono.bench.v1");
    const obs::json::Value* results = doc.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_TRUE(results->isArray());
    for (const obs::json::Value& row : results->arr) {
        ASSERT_TRUE(row.isObject());
        expectString(row, "name");
        expectString(row, "kernel");
        expectString(row, "graph");
        expectString(row, "mode");
        expectNumber(row, "vertices");
        expectNumber(row, "edges");
        expectNumber(row, "threads");
        expectNumber(row, "time_seconds");
        expectNumber(row, "edges_per_second");
        expectNumber(row, "variability");
        // GAP-methodology fields (add-only schema extension). Rows
        // from bench_gap carry a real baseline measurement, so their
        // normalized speedup and trial count must be non-zero.
        expectNumber(row, "seq_seconds");
        expectNumber(row, "speedup");
        expectNumber(row, "trials");
        // Trial-distribution fields (add-only schema extension).
        expectNumber(row, "p50_seconds");
        expectNumber(row, "p90_seconds");
        expectNumber(row, "p99_seconds");
        const obs::json::Value* name = row.find("name");
        ASSERT_NE(name, nullptr);
        if (name->str.rfind("gap/", 0) == 0) {
            EXPECT_GT(row.find("speedup")->num, 0.0) << name->str;
            EXPECT_GT(row.find("seq_seconds")->num, 0.0) << name->str;
            EXPECT_GT(row.find("trials")->num, 0.0) << name->str;
            EXPECT_GT(row.find("p50_seconds")->num, 0.0) << name->str;
            EXPECT_LE(row.find("p50_seconds")->num,
                      row.find("p99_seconds")->num)
                << name->str;
        }
    }
}

/** Validate one crono.metrics.v1 document. */
void
checkMetricsDoc(const obs::json::Value& doc)
{
    const obs::json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "crono.metrics.v1");
    expectString(doc, "kernel");
    expectString(doc, "graph");
    expectNumber(doc, "threads");
    const obs::json::Value* runtime = doc.find("runtime");
    ASSERT_NE(runtime, nullptr);
    ASSERT_TRUE(runtime->isObject());
    expectNumber(*runtime, "time");
    const obs::json::Value* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_TRUE(counters->isObject());
}

/** Validate one crono.profile.v1 document. */
void
checkProfileDoc(const obs::json::Value& doc)
{
    const obs::json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "crono.profile.v1");
    const obs::json::Value* source = doc.find("source");
    ASSERT_NE(source, nullptr);
    ASSERT_TRUE(source->isString());
    // Every degradation tier must still produce a tagged document.
    EXPECT_TRUE(source->str == "perf" || source->str == "perf-sw" ||
                source->str == "fallback" || source->str == "none")
        << source->str;
    const obs::json::Value* sections = doc.find("sections");
    ASSERT_NE(sections, nullptr);
    ASSERT_TRUE(sections->isArray());
    for (const obs::json::Value& sec : sections->arr) {
        expectString(sec, "graph");
        expectNumber(sec, "threads");
        expectNumber(sec, "spans_dropped");
        const obs::json::Value* spans = sec.find("spans");
        ASSERT_NE(spans, nullptr);
        ASSERT_TRUE(spans->isArray());
        for (const obs::json::Value& sp : spans->arr) {
            expectString(sp, "name");
            expectString(sp, "cat");
            expectNumber(sp, "count");
            const obs::json::Value* dur = sp.find("duration_ns");
            ASSERT_NE(dur, nullptr);
            expectNumber(*dur, "mean");
            expectNumber(*dur, "p50");
            expectNumber(*dur, "p90");
            expectNumber(*dur, "p99");
            expectNumber(*dur, "max");
            EXPECT_LE(dur->find("p50")->num, dur->find("p99")->num);
            const obs::json::Value* counters = sp.find("counters");
            ASSERT_NE(counters, nullptr);
            EXPECT_TRUE(counters->isObject());
            const obs::json::Value* derived = sp.find("derived");
            ASSERT_NE(derived, nullptr);
            expectNumber(*derived, "ipc");
            expectNumber(*derived, "llc_miss_rate");
        }
        const obs::json::Value* imbalance = sec.find("imbalance");
        ASSERT_NE(imbalance, nullptr);
        expectNumber(*imbalance, "busy_cv");
        const obs::json::Value* threads = imbalance->find("threads");
        ASSERT_NE(threads, nullptr);
        ASSERT_TRUE(threads->isArray());
        for (const obs::json::Value& t : threads->arr) {
            expectNumber(t, "tid");
            expectNumber(t, "wall_ns");
            expectNumber(t, "busy_frac");
            expectNumber(t, "barrier_frac");
            expectNumber(t, "steal_frac");
        }
        const obs::json::Value* sim = sec.find("sim");
        ASSERT_NE(sim, nullptr);
        EXPECT_TRUE(sim->isNull() || sim->isArray());
        if (sim->isArray()) {
            for (const obs::json::Value& row : sim->arr) {
                expectString(row, "kernel");
                expectNumber(row, "completion_cycles");
                expectNumber(row, "l1d_miss_rate");
                expectNumber(row, "l2_miss_rate");
                expectNumber(row, "hierarchy_miss_rate");
            }
        }
    }
}

/** Validate one crono.lint.v1 document (crono_analyze --json). */
void
checkLintDoc(const obs::json::Value& doc)
{
    const obs::json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "crono.lint.v1");
    expectString(doc, "root");
    expectNumber(doc, "files_analyzed");
    expectNumber(doc, "suppressed");
    expectNumber(doc, "finding_count");
    const obs::json::Value* findings = doc.find("findings");
    ASSERT_NE(findings, nullptr);
    ASSERT_TRUE(findings->isArray());
    EXPECT_EQ(doc.find("finding_count")->num,
              static_cast<double>(findings->arr.size()));
    for (const obs::json::Value& f : findings->arr) {
        ASSERT_TRUE(f.isObject());
        expectString(f, "file");
        expectNumber(f, "line");
        expectString(f, "rule");
        expectString(f, "severity");
        expectString(f, "message");
        expectString(f, "snippet");
        EXPECT_GE(f.find("line")->num, 1.0);
    }
}

/** Validate one crono.serve.v1 document (serve/report.h). */
void
checkServeDoc(const obs::json::Value& doc)
{
    const obs::json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, "crono.serve.v1");
    const obs::json::Value* server = doc.find("server");
    ASSERT_NE(server, nullptr);
    ASSERT_TRUE(server->isObject());
    expectNumber(*server, "num_shards");
    expectString(*server, "reordering");
    expectNumber(*server, "epoch");
    expectNumber(*server, "vertices");
    expectNumber(*server, "edge_slots");
    expectNumber(*server, "delta_edges");
    expectNumber(*server, "delta_depth");
    expectNumber(*server, "batches_ingested");
    expectNumber(*server, "edges_ingested");
    expectNumber(*server, "compactions");
    // "workload" is the schema's only optional block: present in
    // bench_serve reports, absent in the server's kStats documents.
    const obs::json::Value* workload = doc.find("workload");
    if (workload != nullptr) {
        ASSERT_TRUE(workload->isObject());
        expectString(*workload, "mode");
        expectNumber(*workload, "clients");
        expectNumber(*workload, "requests_per_client");
        expectNumber(*workload, "target_rps");
        expectNumber(*workload, "ingest_batches");
        expectString(*workload, "graph");
        expectNumber(*workload, "seed");
    }
    const obs::json::Value* classes = doc.find("classes");
    ASSERT_NE(classes, nullptr);
    ASSERT_TRUE(classes->isArray());
    for (const obs::json::Value& c : classes->arr) {
        ASSERT_TRUE(c.isObject());
        expectString(c, "op");
        expectNumber(c, "count");
        expectNumber(c, "errors");
        expectNumber(c, "mean_seconds");
        expectNumber(c, "p50_seconds");
        expectNumber(c, "p90_seconds");
        expectNumber(c, "p99_seconds");
        expectNumber(c, "min_seconds");
        expectNumber(c, "max_seconds");
        // Zero-count classes are skipped at render time, so every row
        // present must describe real traffic with ordered quantiles.
        EXPECT_GT(c.find("count")->num, 0.0) << c.find("op")->str;
        EXPECT_LE(c.find("p50_seconds")->num,
                  c.find("p99_seconds")->num)
            << c.find("op")->str;
    }
    const obs::json::Value* totals = doc.find("totals");
    ASSERT_NE(totals, nullptr);
    ASSERT_TRUE(totals->isObject());
    expectNumber(*totals, "requests");
    expectNumber(*totals, "errors");
    expectNumber(*totals, "seconds");
    expectNumber(*totals, "throughput_rps");
}

/** Route a document to its schema's validator by tag. */
void
checkAnyReport(const obs::json::Value& doc, const std::string& label)
{
    SCOPED_TRACE(label);
    const obs::json::Value* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr) << "document has no schema tag";
    if (schema->str == "crono.bench.v1") {
        checkBenchDoc(doc);
    } else if (schema->str == "crono.metrics.v1") {
        checkMetricsDoc(doc);
    } else if (schema->str == "crono.profile.v1") {
        checkProfileDoc(doc);
    } else if (schema->str == "crono.lint.v1") {
        checkLintDoc(doc);
    } else if (schema->str == "crono.serve.v1") {
        checkServeDoc(doc);
    } else {
        FAIL() << "unknown schema tag " << schema->str;
    }
}

/** A real instrumented run: the reordering counters must appear. */
obs::MetricsReport
makeMetricsReport()
{
    obs::TelemetrySession session;
    const graph::ReorderedGraph rg = graph::reorderGraph(
        graph::generators::socialNetwork(7, 6, 3),
        graph::Reordering::kDegreeSort, /*blocked=*/true);
    rt::NativeExecutor exec(2);
    const auto res =
        core::pageRank(exec, 2, rg.graph, 3, 0.15, nullptr,
                       core::PageRankMode::kGather);
    obs::MetricsReport report;
    report.kernel = "PAGE_RANK";
    report.graph = "social(2^7,ef6)+degree+blocked";
    report.threads = 2;
    report.frontier_mode = "gather";
    report.setRuntime(res.run);
    report.setCounters(session.recorder());
    return report;
}

std::vector<obs::BenchResult>
makeBenchRows()
{
    std::vector<obs::BenchResult> rows;
    for (const graph::Reordering r : graph::allReorderings()) {
        obs::BenchResult row;
        row.name = std::string("pagerank/social/") +
                   graph::reorderingName(r) + "/t2";
        row.kernel = "PAGE_RANK";
        row.graph = "social(2^7,ef6)";
        row.vertices = 128;
        row.edges = 1024;
        row.threads = 2;
        row.mode = graph::reorderingName(r);
        row.time_seconds = 0.001;
        row.edges_per_second = 1024.0 / 0.001;
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Rows shaped like bench_gap's output: baseline-normalized. */
std::vector<obs::BenchResult>
makeGapRows()
{
    std::vector<obs::BenchResult> rows;
    for (const char* mode : {"flagscan", "worklist", "delta"}) {
        obs::BenchResult row;
        row.name = std::string("gap/sssp/road(64^2)/") + mode + "/t1";
        row.kernel = "SSSP_DIJK";
        row.graph = "road(64^2)";
        row.vertices = 4096;
        row.edges = 13000;
        row.threads = 1;
        row.mode = mode;
        row.time_seconds = 0.002;
        row.edges_per_second = 13000.0 / 0.002;
        row.seq_seconds = 0.003;
        row.speedup = row.seq_seconds / row.time_seconds;
        row.trials = 4;
        row.setTrialPercentiles({0.0018, 0.0019, 0.0021, 0.0022});
        row.counters.emplace_back("relaxations", 13000);
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * A serve report shaped like bench_serve's output: two request
 * classes with real histogram samples, plus the workload block. The
 * same renderer produces the server's kStats document (workload
 * omitted), exercised via the nullptr overload below.
 */
std::string
makeServeReportJson(bool with_workload)
{
    serve::ServeInfo info;
    info.num_shards = 4;
    info.reordering = "degree";
    info.epoch = 7;
    info.vertices = 4096;
    info.edge_slots = 65536;
    info.batches_ingested = 3;
    info.edges_ingested = 96;
    info.compactions = 1;
    std::vector<serve::ClassStats> classes(3);
    classes[0].op = "sssp";
    classes[0].count = 40;
    for (int i = 1; i <= 40; ++i) {
        classes[0].latency_ns.add(
            static_cast<std::uint64_t>(i) * 10000);
    }
    classes[1].op = "ingest";
    classes[1].count = 3;
    classes[1].errors = 1;
    for (const std::uint64_t ns : {50000, 70000, 90000}) {
        classes[1].latency_ns.add(ns);
    }
    classes[2].op = "never_requested"; // count 0: must be skipped
    serve::ServeTotals totals;
    totals.requests = 43;
    totals.errors = 1;
    totals.seconds = 0.5;
    serve::WorkloadDesc workload;
    workload.mode = "closed";
    workload.clients = 8;
    workload.requests_per_client = 5;
    workload.ingest_batches = 3;
    workload.graph = "kron-12";
    workload.seed = 42;
    workload.quick = true;
    return serve::serveReportJson(info, classes, totals,
                                  with_workload ? &workload : nullptr);
}

TEST(ReportSchema, ServeReportDocumentParses)
{
    const obs::json::Value doc =
        parseOrFail(makeServeReportJson(true), "serve report");
    checkServeDoc(doc);
    EXPECT_EQ(doc.find("server")->find("num_shards")->num, 4.0);
    EXPECT_EQ(doc.find("server")->find("reordering")->str, "degree");
    // The zero-count class was skipped, the real ones kept.
    ASSERT_EQ(doc.find("classes")->arr.size(), 2u);
    EXPECT_EQ(doc.find("classes")->arr[0].find("op")->str, "sssp");
    EXPECT_EQ(doc.find("classes")->arr[1].find("errors")->num, 1.0);
    EXPECT_NE(doc.find("workload"), nullptr);
    EXPECT_DOUBLE_EQ(
        doc.find("totals")->find("throughput_rps")->num, 86.0);

    // The kStats shape: same schema, no workload block.
    const obs::json::Value stats =
        parseOrFail(makeServeReportJson(false), "serve stats");
    checkServeDoc(stats);
    EXPECT_EQ(stats.find("workload"), nullptr);
}

/** A real profiled run, whatever counter tier this host lands on. */
obs::ProfileReport
makeProfileReport()
{
    obs::TelemetrySession telemetry;
    obs::perf::ProfileSession profile;
    {
        rt::NativeExecutor exec(2);
        const graph::Graph g = graph::generators::socialNetwork(7, 6, 3);
        core::bfs(exec, 2, g, 0, graph::kNoVertex, nullptr,
                  rt::FrontierMode::kAdaptive);
    }
    obs::ProfileSection sec;
    sec.graph = "social(2^7,ef6)";
    sec.threads = 2;
    sec.spans_dropped = telemetry.recorder().totalDropped();
    sec.spans = obs::collectSpanProfiles(profile.sessionCollector());
    sec.imbalance = obs::imbalanceFromRecorder(telemetry.recorder());
    obs::ProfileReport report;
    report.source = profile.sessionCollector().source();
    report.multiplexed = profile.sessionCollector().multiplexed();
    report.sections.push_back(std::move(sec));
    return report;
}

TEST(ReportSchema, ProfileDocumentParses)
{
    const obs::ProfileReport report = makeProfileReport();
    const obs::json::Value doc =
        parseOrFail(report.toJson(), "profile report");
    checkProfileDoc(doc);
    // The BFS kernel span must have been attributed.
    const obs::json::Value& sec = doc.find("sections")->arr.front();
    bool found_bfs = false;
    for (const obs::json::Value& sp : sec.find("spans")->arr) {
        if (sp.find("name")->str == "BFS") {
            found_bfs = true;
            EXPECT_GT(sp.find("count")->num, 0.0);
        }
    }
    EXPECT_TRUE(found_bfs);
}

TEST(ReportSchema, GapBenchDocumentParses)
{
    const std::string text = obs::benchSuiteJson(makeGapRows());
    const obs::json::Value doc = parseOrFail(text, "gap bench");
    checkBenchDoc(doc);
    const obs::json::Value* results = doc.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->arr.size(), 3u);
    const obs::json::Value& row = results->arr.front();
    EXPECT_DOUBLE_EQ(row.find("speedup")->num, 1.5);
    EXPECT_EQ(row.find("trials")->num, 4.0);
    // exactQuantile interpolates order statistics over the 4 samples.
    EXPECT_DOUBLE_EQ(row.find("p50_seconds")->num, 0.0020);
    EXPECT_NEAR(row.find("p99_seconds")->num, 0.0022, 1e-5);
}

TEST(ReportSchema, BenchSuiteDocumentParses)
{
    const std::string text = obs::benchSuiteJson(makeBenchRows());
    const obs::json::Value doc = parseOrFail(text, "bench suite");
    checkBenchDoc(doc);
    const obs::json::Value* results = doc.find("results");
    ASSERT_NE(results, nullptr);
    EXPECT_EQ(results->arr.size(), graph::allReorderings().size());
    EXPECT_EQ(results->arr.front().find("mode")->str, "none");
}

TEST(ReportSchema, MetricsReportDocumentParses)
{
    const obs::MetricsReport report = makeMetricsReport();
    const obs::json::Value doc =
        parseOrFail(report.toJson(), "metrics report");
    checkMetricsDoc(doc);
    // The instrumented reorderGraph call must surface its counters.
    const obs::json::Value* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_NE(counters->find("reorder_ms"), nullptr);
    EXPECT_NE(counters->find("block_fills"), nullptr);
}

#ifdef CRONO_HAVE_STATICLINT
/** A lint run over in-memory sources with one finding and one
 *  suppression, shaped like crono_analyze --json output. */
std::string
makeLintReportJson()
{
    const staticlint::AnalysisResult res = staticlint::analyzeSources(
        {{"t.cpp",
          "std::mutex bad;\n"
          "// crono-lint: allow(volatile): exercised for the report\n"
          "volatile int suppressed_one = 0;\n"}});
    return staticlint::writeReportJson(res, "/root/repo");
}

TEST(ReportSchema, LintReportDocumentParses)
{
    const obs::json::Value doc =
        parseOrFail(makeLintReportJson(), "lint report");
    checkLintDoc(doc);
    ASSERT_EQ(doc.find("findings")->arr.size(), 1u);
    const obs::json::Value& f = doc.find("findings")->arr.front();
    EXPECT_EQ(f.find("rule")->str, "raw-sync");
    EXPECT_EQ(f.find("line")->num, 1.0);
    EXPECT_EQ(f.find("severity")->str, "error");
    EXPECT_EQ(doc.find("suppressed")->num, 1.0);
    EXPECT_EQ(doc.find("files_analyzed")->num, 1.0);
}
#endif // CRONO_HAVE_STATICLINT

TEST(ReportSchema, EveryEmittedReportParses)
{
    fs::path dir;
    const char* const env = std::getenv("CRONO_REPORT_DIR");
    if (env != nullptr && *env != '\0') {
        dir = env;
    } else {
        // Self-contained fallback: emit one document per schema the
        // benches produce, then sweep the directory like CI does.
        dir = fs::path(::testing::TempDir()) / "crono_reports";
        fs::create_directories(dir);
        ASSERT_TRUE(obs::writeTextFile(
            (dir / "table_reorder.json").string(),
            obs::benchSuiteJson(makeBenchRows())));
        ASSERT_TRUE(obs::writeTextFile(
            (dir / "table_gap.json").string(),
            obs::benchSuiteJson(makeGapRows())));
        ASSERT_TRUE(
            makeMetricsReport().writeJson((dir / "metrics.json").string()));
        ASSERT_TRUE(makeProfileReport().writeJson(
            (dir / "table_profile.json").string()));
        ASSERT_TRUE(obs::writeTextFile(
            (dir / "serve_report.json").string(),
            makeServeReportJson(true)));
#ifdef CRONO_HAVE_STATICLINT
        ASSERT_TRUE(obs::writeTextFile(
            (dir / "lint_report.json").string(), makeLintReportJson()));
#endif
    }
    ASSERT_TRUE(fs::is_directory(dir)) << dir;
    std::size_t checked = 0;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".json") {
            continue;
        }
        const obs::json::Value doc = parseOrFail(
            slurp(entry.path()), entry.path().filename().string());
        checkAnyReport(doc, entry.path().filename().string());
        ++checked;
    }
    EXPECT_GT(checked, 0u) << "no .json reports found in " << dir;
}

} // namespace
} // namespace crono

/**
 * @file
 * Tests for the hardware-counter profiling layer: LogHistogram bucket
 * math and edge cases, the ThreadCounters degradation chain (with the
 * CRONO_PROFILE=off forced-fallback path that counter-less CI
 * containers rely on), span-attributed aggregation through
 * ProfileSession, and the imbalance distillation.
 *
 * Everything here must pass on any tier — the assertions about
 * counter *values* only use counters the fallback tier also fills.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/suite.h"
#include "graph/generators.h"
#include "obs/histogram.h"
#include "obs/perf/counters.h"
#include "obs/perf/sampler.h"
#include "obs/profile_report.h"
#include "obs/telemetry.h"
#include "runtime/executor.h"

namespace crono {
namespace {

namespace perf = obs::perf;

// ------------------------------------------------------- histogram

TEST(LogHistogram, EmptyReportsZeros)
{
    obs::LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(LogHistogram, SingleSampleIsExactAtEveryQuantile)
{
    obs::LogHistogram h;
    h.add(123456789);
    EXPECT_EQ(h.count(), 1u);
    // The clamp to [min, max] makes one sample exact even though its
    // covering bucket is ~6% wide.
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(h.quantile(q), 123456789.0) << q;
    }
    EXPECT_DOUBLE_EQ(h.mean(), 123456789.0);
}

TEST(LogHistogram, SmallValuesLandInExactUnitBuckets)
{
    obs::LogHistogram h(4);
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(h.indexFor(v), v);
        EXPECT_EQ(h.bucketLo(v), v);
        EXPECT_EQ(h.bucketHi(v), v + 1);
    }
}

TEST(LogHistogram, BucketBoundsCoverTheirValues)
{
    obs::LogHistogram h(4);
    for (const std::uint64_t v :
         {std::uint64_t{16}, std::uint64_t{17}, std::uint64_t{1000},
          std::uint64_t{1} << 32, (std::uint64_t{1} << 40) + 12345,
          std::numeric_limits<std::uint64_t>::max()}) {
        const std::size_t i = h.indexFor(v);
        EXPECT_LE(h.bucketLo(i), v) << v;
        EXPECT_GT(h.bucketHi(i), v - 1) << v; // hi is exclusive
    }
}

TEST(LogHistogram, OverflowBucketHandlesUint64Max)
{
    obs::LogHistogram h;
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    h.add(top);
    h.add(top - 1);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), top);
    // The final bucket's exclusive bound saturates instead of
    // wrapping, and the quantile clamp keeps the answer in range.
    EXPECT_LE(h.quantile(1.0), static_cast<double>(top));
    EXPECT_GE(h.quantile(0.0), static_cast<double>(top - 1));
}

TEST(LogHistogram, QuantilesAreOrderedAndWithinRelativeError)
{
    obs::LogHistogram h(4);
    std::vector<double> raw;
    std::uint64_t v = 100;
    for (int i = 0; i < 1000; ++i) {
        v = v * 1103515245 + 12345; // LCG, full-range spread
        const std::uint64_t sample = (v >> 16) % 1000000 + 1;
        h.add(sample);
        raw.push_back(static_cast<double>(sample));
    }
    double prev = 0.0;
    for (const double q : {0.10, 0.50, 0.90, 0.99}) {
        const double approx = h.quantile(q);
        const double exact = obs::exactQuantile(raw, q);
        EXPECT_GE(approx, prev);
        // Half-bucket midpoint error: 2^-sub_bits on either side.
        EXPECT_NEAR(approx, exact, exact * 0.08 + 1.0) << q;
        prev = approx;
    }
}

TEST(LogHistogram, MergeMatchesSequentialFill)
{
    obs::LogHistogram a(4), b(4), all(4);
    for (std::uint64_t v = 1; v < 500; ++v) {
        ((v % 2 == 0) ? a : b).add(v * 37);
        all.add(v * 37);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
}

TEST(LogHistogram, MergeIntoEmptyAdoptsBounds)
{
    obs::LogHistogram a(4), b(4);
    b.add(7);
    b.add(9000);
    a.merge(b);
    EXPECT_EQ(a.min(), 7u);
    EXPECT_EQ(a.max(), 9000u);
    a.merge(obs::LogHistogram(4)); // merging an empty one is a no-op
    EXPECT_EQ(a.count(), 2u);
}

TEST(ExactQuantile, InterpolatesOrderStatistics)
{
    EXPECT_DOUBLE_EQ(obs::exactQuantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(obs::exactQuantile({3.0}, 0.99), 3.0);
    EXPECT_DOUBLE_EQ(obs::exactQuantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(obs::exactQuantile({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(obs::exactQuantile({4.0, 1.0, 3.0, 2.0}, 1.0), 4.0);
}

// ------------------------------------------------- counter chain

TEST(ThreadCounters, ProbesSomeTier)
{
    perf::ThreadCounters tc;
    // Whatever this host allows, the chain must land somewhere and
    // sampling must never fail.
    EXPECT_NE(tc.source(), perf::CounterSource::kNone);
    const perf::Sample a = tc.sample();
    // Burn a little CPU so time-based counters advance.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 2000000; ++i) {
        sink = sink + static_cast<std::uint64_t>(i) * 7;
    }
    const perf::Sample b = tc.sample();
    const perf::CounterDelta d = perf::sampleDelta(a, b, tc.source());
    EXPECT_TRUE(d.any()) << "no counter advanced across busy work";
}

TEST(ThreadCounters, EnvOffForcesFallback)
{
    ASSERT_EQ(setenv("CRONO_PROFILE", "off", 1), 0);
    {
        perf::ThreadCounters tc;
        EXPECT_EQ(tc.source(), perf::CounterSource::kFallback);
        const perf::Sample a = tc.sample();
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 2000000; ++i) {
            sink = sink + static_cast<std::uint64_t>(i);
        }
        const perf::Sample b = tc.sample();
        const perf::CounterDelta d =
            perf::sampleDelta(a, b, tc.source());
        // Fallback always has the steady clock.
        EXPECT_GT(d.get(perf::HwCounter::kWallNs), 0u);
    }
    ASSERT_EQ(unsetenv("CRONO_PROFILE"), 0);
}

TEST(CounterDelta, DerivedRatesComeFromHardwareCounters)
{
    perf::CounterDelta d;
    EXPECT_DOUBLE_EQ(d.ipc(), 0.0); // no inputs -> no rate
    d.v[static_cast<std::size_t>(perf::HwCounter::kCycles)] = 1000;
    d.v[static_cast<std::size_t>(perf::HwCounter::kInstructions)] = 2500;
    d.v[static_cast<std::size_t>(perf::HwCounter::kLlcRefs)] = 200;
    d.v[static_cast<std::size_t>(perf::HwCounter::kLlcMisses)] = 50;
    EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(d.llcMissRate(), 0.25);
}

// ------------------------------------------- span attribution

TEST(ProfileSession, AttributesHostSpans)
{
    obs::TelemetrySession telemetry;
    perf::ProfileSession profile;
    for (int i = 0; i < 3; ++i) {
        obs::ScopedHostSpan span("test_region");
        volatile std::uint64_t sink = 0;
        for (int j = 0; j < 100000; ++j) {
            sink = sink + static_cast<std::uint64_t>(j);
        }
    }
    const std::vector<obs::SpanProfile> spans =
        obs::collectSpanProfiles(profile.sessionCollector());
    const obs::SpanProfile* region = nullptr;
    for (const obs::SpanProfile& sp : spans) {
        if (sp.name == "test_region") {
            region = &sp;
        }
    }
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(region->count, 3u);
    EXPECT_EQ(region->duration_ns.count(), 3u);
    EXPECT_GT(region->duration_ns.max(), 0u);
    EXPECT_TRUE(region->total.any());
}

TEST(ProfileSession, InactiveSessionRecordsNothing)
{
    obs::TelemetrySession telemetry;
    {
        obs::ScopedHostSpan span("before_session");
    }
    perf::ProfileSession profile;
    const std::vector<obs::SpanProfile> spans =
        obs::collectSpanProfiles(profile.sessionCollector());
    EXPECT_TRUE(spans.empty());
}

TEST(ProfileSession, KernelRunAttributesWorkerAndKernelSpans)
{
    const graph::Graph g = graph::generators::socialNetwork(7, 6, 3);
    obs::TelemetrySession telemetry;
    perf::ProfileSession profile;
    {
        rt::NativeExecutor exec(2);
        core::bfs(exec, 2, g, 0, graph::kNoVertex, nullptr,
                  rt::FrontierMode::kAdaptive);
    }
    bool kernel = false, worker = false;
    for (const obs::SpanProfile& sp :
         obs::collectSpanProfiles(profile.sessionCollector())) {
        if (sp.name == "BFS") {
            kernel = true;
            EXPECT_TRUE(sp.total.any()) << "kernel span has no delta";
        }
        if (sp.name == "worker") {
            worker = true;
        }
    }
    EXPECT_TRUE(kernel);
    EXPECT_TRUE(worker);
}

TEST(ProfileSession, SessionsDoNotLeakAcrossInstalls)
{
    obs::TelemetrySession telemetry;
    {
        perf::ProfileSession first;
        obs::ScopedHostSpan span("first_only");
    }
    perf::ProfileSession second;
    {
        obs::ScopedHostSpan span("second_only");
    }
    const std::vector<obs::SpanProfile> spans =
        obs::collectSpanProfiles(second.sessionCollector());
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans.front().name, "second_only");
}

// ------------------------------------------------- imbalance

TEST(Imbalance, FractionsAreSaneForRealRun)
{
    const graph::Graph g = graph::generators::socialNetwork(8, 8, 5);
    obs::TelemetrySession telemetry;
    {
        rt::NativeExecutor exec(2);
        core::pageRank(exec, 2, g, 3, 0.15, nullptr,
                       core::PageRankMode::kScatter);
    }
    const obs::ImbalanceSummary s =
        obs::imbalanceFromRecorder(telemetry.recorder());
    ASSERT_FALSE(s.threads.empty());
    for (const obs::ThreadImbalance& t : s.threads) {
        EXPECT_GT(t.wall_ns, 0.0);
        EXPECT_GE(t.busy_frac, 0.0);
        EXPECT_LE(t.busy_frac, 1.0);
        EXPECT_GE(t.barrier_frac, 0.0);
        EXPECT_LE(t.barrier_frac, 1.0);
        EXPECT_GE(t.steal_frac, 0.0);
        EXPECT_LE(t.steal_frac, 1.0);
        EXPECT_NEAR(t.busy_frac + t.barrier_frac + t.steal_frac, 1.0,
                    1e-9);
    }
    EXPECT_GE(s.busy_cv, 0.0);
}

TEST(Imbalance, EmptyRecorderYieldsNoThreads)
{
    obs::Recorder recorder(16);
    const obs::ImbalanceSummary s = obs::imbalanceFromRecorder(recorder);
    EXPECT_TRUE(s.threads.empty());
    EXPECT_DOUBLE_EQ(s.busy_cv, 0.0);
}

} // namespace
} // namespace crono

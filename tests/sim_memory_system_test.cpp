/**
 * @file
 * Coherence-protocol tests driven directly against MemorySystem:
 * MESI state transitions, miss classification (cold / capacity /
 * sharing), invalidation and write-back accounting, ACKwise broadcast
 * on overflow, line serialization, and address translation.
 */

#include <gtest/gtest.h>

#include "sim/memory_system.h"

namespace crono::sim {
namespace {

class MemorySystemTest : public ::testing::Test {
  protected:
    MemorySystemTest() : cfg_(Config::futuristic256()), mem_(cfg_) {}

    /** Distinct, line-aligned fake host addresses. */
    std::uintptr_t
    lineAddr(std::uint64_t index)
    {
        return (index + 1000) * cfg_.line_bytes;
    }

    LineAddr
    simLine(std::uint64_t index)
    {
        return mem_.translateLine(lineAddr(index) / cfg_.line_bytes);
    }

    AccessLatency
    read(int core, std::uint64_t index)
    {
        return mem_.access(core, lineAddr(index), 8, false, time_);
    }

    AccessLatency
    write(int core, std::uint64_t index)
    {
        return mem_.access(core, lineAddr(index), 8, true, time_);
    }

    Config cfg_;
    MemorySystem mem_;
    std::uint64_t time_ = 0;
};

TEST_F(MemorySystemTest, FirstReadGrantsExclusive)
{
    read(3, 0);
    EXPECT_EQ(mem_.l1State(3, simLine(0)), LineState::exclusive);
    EXPECT_EQ(mem_.dirState(simLine(0)), DirState::exclusive);
    EXPECT_EQ(mem_.l1dStats().misses[0], 1u); // cold
    EXPECT_EQ(mem_.dramStats().accesses, 1u);
}

TEST_F(MemorySystemTest, FirstWriteGrantsModified)
{
    write(3, 0);
    EXPECT_EQ(mem_.l1State(3, simLine(0)), LineState::modified);
    EXPECT_EQ(mem_.dirState(simLine(0)), DirState::exclusive);
}

TEST_F(MemorySystemTest, SecondReaderDowngradesToShared)
{
    read(1, 0);
    read(2, 0);
    EXPECT_EQ(mem_.l1State(1, simLine(0)), LineState::shared);
    EXPECT_EQ(mem_.l1State(2, simLine(0)), LineState::shared);
    EXPECT_EQ(mem_.dirState(simLine(0)), DirState::shared);
}

TEST_F(MemorySystemTest, HitsDoNotTouchDirectory)
{
    read(1, 0);
    const auto lookups = mem_.directoryStats().lookups;
    const AccessLatency lat = read(1, 0); // L1 hit
    EXPECT_EQ(lat.total(), 0u);
    EXPECT_EQ(mem_.directoryStats().lookups, lookups);
    EXPECT_EQ(mem_.l1dStats().hits, 1u);
}

TEST_F(MemorySystemTest, WriteInvalidatesReadersAsSharingMisses)
{
    read(1, 0);
    read(2, 0);
    write(3, 0); // invalidates cores 1 and 2
    EXPECT_EQ(mem_.l1State(1, simLine(0)), LineState::invalid);
    EXPECT_EQ(mem_.l1State(2, simLine(0)), LineState::invalid);
    EXPECT_EQ(mem_.l1State(3, simLine(0)), LineState::modified);
    EXPECT_GE(mem_.directoryStats().invalidations, 2u);

    // The displaced reader's next access classifies as a sharing miss.
    read(1, 0);
    EXPECT_EQ(mem_.l1dStats().misses[static_cast<int>(MissClass::sharing)],
              1u);
}

TEST_F(MemorySystemTest, WriteAfterWriteRecallsOwner)
{
    write(1, 0);
    const AccessLatency lat = write(2, 0);
    EXPECT_GT(lat.sharers, 0u); // owner recall round trip
    EXPECT_EQ(mem_.l1State(1, simLine(0)), LineState::invalid);
    EXPECT_EQ(mem_.l1State(2, simLine(0)), LineState::modified);
    EXPECT_GE(mem_.directoryStats().write_backs, 1u);
}

TEST_F(MemorySystemTest, ReadAfterWriteDowngradesOwner)
{
    write(1, 0);
    read(2, 0);
    EXPECT_EQ(mem_.l1State(1, simLine(0)), LineState::shared);
    EXPECT_EQ(mem_.l1State(2, simLine(0)), LineState::shared);
    EXPECT_EQ(mem_.dirState(simLine(0)), DirState::shared);
}

TEST_F(MemorySystemTest, SilentEToMUpgrade)
{
    read(1, 0); // E
    const auto invalidations = mem_.directoryStats().invalidations;
    const AccessLatency lat = write(1, 0); // silent E -> M
    EXPECT_EQ(lat.total(), 0u);
    EXPECT_EQ(mem_.l1State(1, simLine(0)), LineState::modified);
    EXPECT_EQ(mem_.directoryStats().invalidations, invalidations);
}

TEST_F(MemorySystemTest, SharedUpgradeInvalidatesPeersButCountsAsHit)
{
    read(1, 0);
    read(2, 0);
    const auto hits = mem_.l1dStats().hits;
    const AccessLatency lat = write(1, 0); // S -> M upgrade
    EXPECT_GT(lat.sharers, 0u);
    EXPECT_EQ(mem_.l1dStats().hits, hits + 1); // upgrade counted a hit
    EXPECT_EQ(mem_.l1State(1, simLine(0)), LineState::modified);
    EXPECT_EQ(mem_.l1State(2, simLine(0)), LineState::invalid);
}

TEST_F(MemorySystemTest, AckwiseOverflowBroadcasts)
{
    // 5 readers overflow the 4 precise pointers; the next write must
    // broadcast.
    for (int core = 1; core <= 5; ++core) {
        read(core, 0);
    }
    write(6, 0);
    EXPECT_EQ(mem_.directoryStats().broadcasts, 1u);
    for (int core = 1; core <= 5; ++core) {
        EXPECT_EQ(mem_.l1State(core, simLine(0)), LineState::invalid);
    }
}

TEST_F(MemorySystemTest, CapacityMissAfterEviction)
{
    // L1: 128 sets x 4 ways. Lines spaced numSets apart collide in
    // one set; the translation layer is first-touch sequential, so
    // touching 5 such host lines in order maps them to 5 consecutive
    // sim lines -- not the same set. Instead, force eviction by
    // touching more lines than the whole L1 holds.
    const std::uint32_t l1_lines =
        cfg_.l1d.size_bytes / cfg_.line_bytes; // 512
    for (std::uint64_t i = 0; i <= l1_lines; ++i) {
        read(0, i);
    }
    // Line 0 was evicted (LRU) by the (l1_lines+1)-th distinct line.
    read(0, 0);
    EXPECT_EQ(
        mem_.l1dStats().misses[static_cast<int>(MissClass::capacity)], 1u);
}

TEST_F(MemorySystemTest, L2HitAfterL1Eviction)
{
    const std::uint32_t l1_lines =
        cfg_.l1d.size_bytes / cfg_.line_bytes;
    for (std::uint64_t i = 0; i <= l1_lines; ++i) {
        read(0, i);
    }
    const auto dram = mem_.dramStats().accesses;
    read(0, 0); // L1 capacity miss, but the L2 slice still holds it
    EXPECT_EQ(mem_.dramStats().accesses, dram);
}

TEST_F(MemorySystemTest, LineSerializationChargesWaiting)
{
    // Two accesses to the same line at the same timestamp: the second
    // transaction queues behind the first at the home slice.
    const AccessLatency first =
        mem_.access(1, lineAddr(0), 8, false, 5000);
    const AccessLatency second =
        mem_.access(2, lineAddr(0), 8, false, 5000);
    EXPECT_EQ(first.waiting, 0u);
    EXPECT_GT(second.waiting, 0u);
}

TEST_F(MemorySystemTest, AccessSpanningTwoLines)
{
    // An 8-byte access at 4 bytes before a line boundary touches two
    // lines and performs two transactions.
    const std::uintptr_t addr = lineAddr(10) + cfg_.line_bytes - 4;
    mem_.access(0, addr, 8, false, 0);
    EXPECT_EQ(mem_.l1dStats().accesses, 2u);
}

TEST_F(MemorySystemTest, TranslationIsFirstTouchSequential)
{
    const LineAddr a = mem_.translateLine(0xdeadbeef);
    const LineAddr b = mem_.translateLine(0xcafebabe);
    const LineAddr a2 = mem_.translateLine(0xdeadbeef);
    EXPECT_EQ(a, a2);
    EXPECT_EQ(b, a + 1);
}

TEST_F(MemorySystemTest, OffChipLatencyChargedOnColdMiss)
{
    const AccessLatency lat = read(0, 0);
    EXPECT_GE(lat.offchip, cfg_.dram_latency_cycles);
    EXPECT_GT(lat.l1_to_l2, 0u);
}

TEST_F(MemorySystemTest, InstructionFetchCounter)
{
    mem_.instructionFetch(10);
    mem_.instructionFetch(5);
    EXPECT_EQ(mem_.l1iAccesses(), 15u);
}

} // namespace
} // namespace crono::sim

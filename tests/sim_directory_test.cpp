/**
 * @file
 * ACKwise-k sharer-set tests: precise tracking, overflow to
 * count-only mode, and recovery when the set empties.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/directory.h"

namespace crono::sim {
namespace {

TEST(Ackwise, TracksUpToKPointersPrecisely)
{
    AckwiseSharers s(4);
    for (int core : {3, 7, 11, 15}) {
        s.add(core);
    }
    EXPECT_EQ(s.count(), 4);
    EXPECT_FALSE(s.overflowed());
    for (int core : {3, 7, 11, 15}) {
        EXPECT_TRUE(s.contains(core));
    }
    EXPECT_FALSE(s.contains(5));
    auto ptrs = s.pointers();
    std::sort(ptrs.begin(), ptrs.end());
    EXPECT_EQ(ptrs, (std::vector<int>{3, 7, 11, 15}));
}

TEST(Ackwise, OverflowsOnKPlusOne)
{
    AckwiseSharers s(4);
    for (int core = 0; core < 5; ++core) {
        s.add(core);
    }
    EXPECT_TRUE(s.overflowed());
    EXPECT_EQ(s.count(), 5); // count stays exact
    // In overflow mode anyone may be a sharer.
    EXPECT_TRUE(s.contains(200));
}

TEST(Ackwise, RemoveRestoresPointerSlot)
{
    AckwiseSharers s(4);
    s.add(1);
    s.add(2);
    s.remove(1);
    EXPECT_EQ(s.count(), 1);
    EXPECT_FALSE(s.contains(1));
    s.add(3); // reuses the freed slot without overflowing
    EXPECT_FALSE(s.overflowed());
    EXPECT_EQ(s.count(), 2);
}

TEST(Ackwise, OverflowClearsWhenEmptied)
{
    AckwiseSharers s(2);
    for (int core = 0; core < 3; ++core) {
        s.add(core);
    }
    EXPECT_TRUE(s.overflowed());
    for (int core = 0; core < 3; ++core) {
        s.remove(core);
    }
    EXPECT_EQ(s.count(), 0);
    EXPECT_FALSE(s.overflowed()); // identities recoverable again
    s.add(9);
    EXPECT_TRUE(s.contains(9));
    EXPECT_FALSE(s.contains(0));
}

TEST(Ackwise, ClearResetsEverything)
{
    AckwiseSharers s(4);
    for (int core = 0; core < 6; ++core) {
        s.add(core);
    }
    s.clear();
    EXPECT_EQ(s.count(), 0);
    EXPECT_FALSE(s.overflowed());
    EXPECT_TRUE(s.pointers().empty());
    EXPECT_TRUE(s.empty());
}

TEST(Ackwise, SingleSharerLifecycle)
{
    AckwiseSharers s(1);
    s.add(42);
    EXPECT_FALSE(s.overflowed());
    s.add(43); // second sharer overflows a 1-pointer directory
    EXPECT_TRUE(s.overflowed());
    EXPECT_EQ(s.count(), 2);
}

TEST(DirEntry, DefaultsToUncached)
{
    DirEntry e(4);
    EXPECT_EQ(e.state, DirState::uncached);
    EXPECT_EQ(e.owner, -1);
    EXPECT_TRUE(e.sharers.empty());
}

} // namespace
} // namespace crono::sim

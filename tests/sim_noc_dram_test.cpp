/**
 * @file
 * Interconnect and DRAM model tests: XY hop counts, latency
 * composition, windowed link contention (including stability under
 * out-of-order timestamps), controller placement and bandwidth
 * queueing.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/dram.h"
#include "sim/noc.h"

namespace crono::sim {
namespace {

Config
cfg16()
{
    Config c = Config::futuristic256(); // 16 x 16 mesh
    return c;
}

TEST(Mesh, HopCountsAreManhattan)
{
    Mesh mesh(cfg16());
    EXPECT_EQ(mesh.hops(0, 0), 0);
    EXPECT_EQ(mesh.hops(0, 1), 1);
    EXPECT_EQ(mesh.hops(0, 16), 1);   // one row down
    EXPECT_EQ(mesh.hops(0, 17), 2);   // diagonal neighbor
    EXPECT_EQ(mesh.hops(0, 255), 30); // corner to corner: 15 + 15
    EXPECT_EQ(mesh.hops(255, 0), 30);
}

TEST(Mesh, LocalDeliveryIsFreeAndUncounted)
{
    Mesh mesh(cfg16());
    EXPECT_EQ(mesh.send(5, 5, 512, 1000), 1000u);
    EXPECT_EQ(mesh.stats().messages, 0u);
    EXPECT_EQ(mesh.stats().flits, 0u);
}

TEST(Mesh, UncontendedLatencyIsHopsTimesHopCyclesPlusSerialization)
{
    Mesh mesh(cfg16());
    // 1-flit-payload control message: (64+64)/64 = 2 flits.
    // 0 -> 3: 3 hops x 2 cycles + (2 - 1) tail = 7.
    EXPECT_EQ(mesh.send(0, 3, 64, 0), 7u);
    // Data message 512 bits: 9 flits; 1 hop: 2 + 8 = 10.
    EXPECT_EQ(mesh.send(0, 1, 512, 100), 110u);
}

TEST(Mesh, CountsFlitHopsAndMessages)
{
    Mesh mesh(cfg16());
    mesh.send(0, 3, 512, 0); // 9 flits x 3 hops
    EXPECT_EQ(mesh.stats().messages, 1u);
    EXPECT_EQ(mesh.stats().flits, 9u);
    EXPECT_EQ(mesh.stats().flit_hops, 27u);
}

TEST(Mesh, SaturatedLinkQueues)
{
    Mesh mesh(cfg16());
    // Blast one link: 9-flit messages at 1/cycle exceed the link's
    // 1 flit/cycle capacity, so contention must accumulate.
    for (std::uint64_t t = 0; t < 64; ++t) {
        mesh.send(0, 1, 512, t);
    }
    EXPECT_GT(mesh.stats().contention_cycles, 100u);
}

TEST(Mesh, LightLoadSeesNoContention)
{
    Mesh mesh(cfg16());
    for (std::uint64_t t = 0; t < 20000; t += 100) {
        mesh.send(0, 15, 512, t);
    }
    EXPECT_EQ(mesh.stats().contention_cycles, 0u);
}

TEST(Mesh, StableUnderOutOfOrderTimestamps)
{
    // The lax-synchronized scheduler presents accesses slightly out of
    // time order; the windowed contention model must not let a
    // future-dated message starve earlier ones (the next-free-pointer
    // pathology).
    Mesh mesh(cfg16());
    crono::Rng rng(7);
    std::uint64_t worst = 0;
    for (int i = 0; i < 20000; ++i) {
        const auto a = static_cast<int>(rng.nextBelow(256));
        const auto b = static_cast<int>(rng.nextBelow(256));
        // Timestamps jitter by +-200 cycles around a slow ramp.
        const std::uint64_t t = 1000 + 2 * i + rng.nextBelow(400);
        const std::uint64_t arrival = mesh.send(a, b, 512, t);
        worst = std::max(worst, arrival - t);
    }
    // Diameter 30 x 2 cycles + 8 tail = 68 uncontended; allow modest
    // queueing but nothing runaway.
    EXPECT_LT(worst, 500u);
}

TEST(Mesh, DistinctPathsDoNotInterfere)
{
    Mesh mesh(cfg16());
    // Row 0 traffic and row 15 traffic share no links under XY.
    for (std::uint64_t t = 0; t < 64; ++t) {
        mesh.send(0, 15, 512, t);
    }
    const std::uint64_t row0 = mesh.stats().contention_cycles;
    for (std::uint64_t t = 0; t < 64; ++t) {
        const std::uint64_t arrival = mesh.send(240, 255, 512, t);
        (void)arrival;
    }
    // Row 15 suffers its own contention but started fresh: the delta
    // equals what row 0 experienced alone.
    EXPECT_EQ(mesh.stats().contention_cycles, 2 * row0);
}

TEST(Dram, ControllersSpreadAcrossMesh)
{
    Dram dram(cfg16());
    // 8 controllers over 256 nodes: nodes 0, 32, 64, ..., 224.
    bool saw_nonzero = false;
    for (LineAddr line = 0; line < 8; ++line) {
        const int node = dram.controllerNode(line);
        EXPECT_EQ(node % 32, 0);
        saw_nonzero |= node != 0;
    }
    EXPECT_TRUE(saw_nonzero);
}

TEST(Dram, FixedLatencyWhenIdle)
{
    Dram dram(cfg16());
    EXPECT_EQ(dram.access(0, 1000), 1100u); // 100-cycle DRAM
    EXPECT_EQ(dram.stats().accesses, 1u);
    EXPECT_EQ(dram.stats().queue_cycles, 0u);
}

TEST(Dram, BandwidthQueueingKicksInUnderLoad)
{
    Dram dram(cfg16());
    // 64 B / 5 B-per-cycle = 13 service cycles per access. Hitting one
    // controller every cycle oversubscribes it.
    std::uint64_t last = 0;
    for (std::uint64_t t = 0; t < 100; ++t) {
        last = dram.access(0, t); // line 0 -> controller 0
    }
    EXPECT_GT(dram.stats().queue_cycles, 0u);
    EXPECT_GT(last, 199u); // later accesses pushed past fixed latency
}

TEST(Dram, IndependentControllersDoNotQueue)
{
    Dram dram(cfg16());
    for (std::uint64_t t = 0; t < 8; ++t) {
        dram.access(t, 0); // lines 0..7 -> 8 distinct controllers
    }
    EXPECT_EQ(dram.stats().queue_cycles, 0u);
}

} // namespace
} // namespace crono::sim

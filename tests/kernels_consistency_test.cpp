/**
 * @file
 * Cross-kernel consistency properties on randomized inputs: different
 * kernels constrain each other's results (BFS vs DFS vs connected
 * components vs SSSP vs triangles), so agreement across many random
 * seeds is a strong end-to-end correctness signal that needs no
 * hand-computed expectations.
 */

#include <gtest/gtest.h>

#include "core/bfs.h"
#include "core/community.h"
#include "core/connected_components.h"
#include "core/dfs.h"
#include "core/pagerank.h"
#include "core/sssp.h"
#include "core/triangle_count.h"
#include "graph/generators.h"
#include "runtime/executor.h"

namespace crono {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
  protected:
    graph::Graph
    randomGraph() const
    {
        // Vary shape with the seed: size, density and weight range.
        const std::uint64_t seed = GetParam();
        const auto n =
            static_cast<graph::VertexId>(100 + (seed * 37) % 400);
        const auto m = static_cast<graph::EdgeId>(n) *
                       (2 + (seed * 13) % 6);
        const auto w = static_cast<graph::Weight>(1 + (seed * 7) % 60);
        return graph::generators::uniformRandom(n, m, w, seed);
    }
};

TEST_P(SeedSweep, BfsDfsAndComponentsAgreeOnReachability)
{
    const graph::Graph g = randomGraph();
    rt::NativeExecutor exec(4);
    const auto bfs = core::bfs(exec, 4, g, 0);
    const auto dfs = core::dfs(exec, 4, g, 0);
    const auto cc = core::connectedComponents(exec, 4, g);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const bool bfs_reached = bfs.level[v] != core::kNoLevel;
        const bool dfs_reached = dfs.order[v] != core::kNotVisited;
        const bool same_component = cc.label[v] == cc.label[0];
        EXPECT_EQ(bfs_reached, dfs_reached) << "v " << v;
        EXPECT_EQ(bfs_reached, same_component) << "v " << v;
    }
    EXPECT_EQ(bfs.reached, dfs.visited);
}

TEST_P(SeedSweep, SsspReachabilityMatchesBfsAndBoundsHold)
{
    const graph::Graph g = randomGraph();
    rt::NativeExecutor exec(4);
    const auto sssp = core::sssp(exec, 4, g, 0);
    const auto bfs = core::bfs(exec, 4, g, 0);
    graph::Weight max_w = 1;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        for (graph::Weight w : g.weights(v)) {
            max_w = std::max(max_w, w);
        }
    }
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const bool reached = bfs.level[v] != core::kNoLevel;
        EXPECT_EQ(sssp.dist[v] != graph::kInfDist, reached) << v;
        if (reached) {
            // Weighted distance bounded by hops x max weight, and at
            // least the hop count (weights >= 1).
            EXPECT_LE(sssp.dist[v],
                      static_cast<graph::Dist>(bfs.level[v]) * max_w);
            EXPECT_GE(sssp.dist[v], bfs.level[v]);
        }
    }
}

TEST_P(SeedSweep, ComponentsPartitionTheGraph)
{
    const graph::Graph g = randomGraph();
    rt::NativeExecutor exec(4);
    const auto cc = core::connectedComponents(exec, 4, g);
    // Each label is the minimum vertex id of its class.
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_LE(cc.label[v], v);
        EXPECT_EQ(cc.label[cc.label[v]], cc.label[v]); // root is fixed
    }
}

TEST_P(SeedSweep, TriangleCountInvariantUnderThreadCount)
{
    const graph::Graph g = randomGraph();
    rt::NativeExecutor exec(8);
    const auto one = core::triangleCount(exec, 1, g);
    const auto eight = core::triangleCount(exec, 8, g);
    EXPECT_EQ(one.total, eight.total);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(one.per_vertex[v], eight.per_vertex[v]);
    }
}

TEST_P(SeedSweep, PageRankMassNeverExceedsOne)
{
    const graph::Graph g = randomGraph();
    rt::NativeExecutor exec(4);
    const auto pr = core::pageRank(exec, 4, g, 6);
    double sum = 0.0;
    for (double r : pr.rank) {
        EXPECT_GE(r, 0.0);
        sum += r;
    }
    // Isolated vertices leak mass, so the sum is at most 1.
    EXPECT_LE(sum, 1.0 + 1e-9);
}

TEST_P(SeedSweep, CommunityPartitionRespectsComponents)
{
    const graph::Graph g = randomGraph();
    rt::NativeExecutor exec(4);
    const auto comm = core::communityDetection(exec, 4, g, 8);
    const auto cc = core::connectedComponents(exec, 4, g);
    // A community can never span two connected components: members of
    // one community must share a component label.
    std::vector<graph::VertexId> comm_component(g.numVertices(),
                                                graph::kNoVertex);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const graph::VertexId c = comm.community[v];
        if (comm_component[c] == graph::kNoVertex) {
            comm_component[c] = cc.label[v];
        } else {
            EXPECT_EQ(comm_component[c], cc.label[v]) << "v " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace crono

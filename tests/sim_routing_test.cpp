/**
 * @file
 * Routing-policy tests: XY vs YX vs O1TURN produce identical minimal
 * hop counts, take the expected paths, and O1TURN spreads hotspot
 * traffic over both dimension orders.
 */

#include <gtest/gtest.h>

#include "sim/noc.h"

namespace crono::sim {
namespace {

Config
withRouting(Routing r)
{
    Config cfg = Config::futuristic256();
    cfg.routing = r;
    return cfg;
}

TEST(Routing, AllPoliciesDeliverWithMinimalLatencyWhenIdle)
{
    for (Routing r : {Routing::xy, Routing::yx, Routing::o1turn}) {
        Mesh mesh(withRouting(r));
        // 0 -> 255: 30 hops x 2 cycles + 8 tail flits = 68.
        EXPECT_EQ(mesh.send(0, 255, 512, 0), 68u)
            << static_cast<int>(r);
        EXPECT_EQ(mesh.hops(0, 255), 30);
    }
}

TEST(Routing, XyAndYxUseDisjointLinksOffDiagonal)
{
    // 0 -> 17 (one right, one down). XY uses east(0) then south(1);
    // YX uses south(0) then east(16). Saturate the XY path and show
    // YX traffic does not queue behind it.
    Mesh xy(withRouting(Routing::xy));
    for (std::uint64_t t = 0; t < 64; ++t) {
        xy.send(0, 17, 512, t);
    }
    const std::uint64_t xy_contention = xy.stats().contention_cycles;
    EXPECT_GT(xy_contention, 0u);

    Mesh both(withRouting(Routing::xy));
    for (std::uint64_t t = 0; t < 64; ++t) {
        both.send(0, 17, 512, t);
    }
    // YX-routed messages between the same endpoints avoid the hot
    // east(0) link entirely.
    Mesh yx(withRouting(Routing::yx));
    for (std::uint64_t t = 0; t < 64; ++t) {
        yx.send(0, 17, 512, t);
    }
    EXPECT_EQ(yx.stats().contention_cycles, xy_contention);
    // (Same pattern mirrored: each alone saturates its own path.)
}

TEST(Routing, O1TurnHalvesHotspotContention)
{
    // A single saturated source-destination pair: XY funnels all
    // messages down one path; O1TURN alternates over two disjoint
    // minimal paths and should see roughly half the queueing.
    Mesh xy(withRouting(Routing::xy));
    Mesh o1(withRouting(Routing::o1turn));
    for (std::uint64_t t = 0; t < 256; ++t) {
        xy.send(0, 17, 512, t);
        o1.send(0, 17, 512, t);
    }
    EXPECT_LT(o1.stats().contention_cycles,
              xy.stats().contention_cycles / 2 + 1000);
}

TEST(Routing, O1TurnDeterministicAlternation)
{
    Mesh a(withRouting(Routing::o1turn));
    Mesh b(withRouting(Routing::o1turn));
    std::uint64_t arr_a = 0, arr_b = 0;
    for (std::uint64_t t = 0; t < 100; ++t) {
        arr_a += a.send(3, 200, 512, t * 7);
        arr_b += b.send(3, 200, 512, t * 7);
    }
    EXPECT_EQ(arr_a, arr_b);
}

} // namespace
} // namespace crono::sim

/**
 * @file
 * Focused tests for the branch-and-bound building blocks and the
 * rt::bnb searcher: BranchStack capacity exhaustion / empty-stack
 * semantics / below() probes, GlobalBound monotonicity under
 * concurrent improvement, deterministic-replay reproducibility for
 * both B&B kernels (TSP, MCS), donation-enabled TSP equivalence, and
 * the 64-city TSP boundary (the widened visited mask).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/mcs.h"
#include "core/sequential.h"
#include "core/tsp.h"
#include "graph/generators.h"
#include "runtime/bnb.h"
#include "runtime/executor.h"
#include "runtime/par.h"
#include "runtime/strategies.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using Ctx = rt::NativeCtx;

// ------------------------------------------------------- BranchStack

TEST(BranchStack, PushDeclinesAtCapacityAndKeepsLifoOrder)
{
    rt::par::BranchStack<Ctx> stack(3);
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](Ctx& ctx) {
        EXPECT_TRUE(stack.push(ctx, 10u));
        EXPECT_TRUE(stack.push(ctx, 11u));
        EXPECT_TRUE(stack.push(ctx, 12u));
        // Capacity exhausted: the donation is declined, not queued.
        EXPECT_FALSE(stack.push(ctx, 13u));
        bool done = true;
        std::uint32_t v = 0;
        ASSERT_TRUE(stack.pop(ctx, &v, &done));
        EXPECT_EQ(v, 12u); // LIFO
        // Space freed: donations are accepted again.
        EXPECT_TRUE(stack.push(ctx, 14u));
        stack.finish(ctx);
    });
}

TEST(BranchStack, EmptyPopReportsDoneOnlyWhenNobodyWorks)
{
    rt::par::BranchStack<Ctx> stack(4);
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](Ctx& ctx) {
        bool done = false;
        std::uint32_t v = 0;
        // Empty and idle: immediately done.
        EXPECT_FALSE(stack.pop(ctx, &v, &done));
        EXPECT_TRUE(done);
        // A registered worker may still donate: not done yet.
        stack.enter(ctx);
        EXPECT_FALSE(stack.pop(ctx, &v, &done));
        EXPECT_FALSE(done);
        // Worker retired without donating: done again.
        stack.finish(ctx);
        EXPECT_FALSE(stack.pop(ctx, &v, &done));
        EXPECT_TRUE(done);
    });
}

TEST(BranchStack, HostSeedIsPoppedAndDrainsToDone)
{
    rt::par::BranchStack<Ctx> stack(4);
    stack.hostSeed(7u);
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](Ctx& ctx) {
        bool done = true;
        std::uint32_t v = 0;
        ASSERT_TRUE(stack.pop(ctx, &v, &done));
        EXPECT_EQ(v, 7u);
        // The popper itself counts as working: not done while it
        // could still donate.
        EXPECT_FALSE(stack.pop(ctx, &v, &done));
        EXPECT_FALSE(done);
        stack.finish(ctx);
        EXPECT_FALSE(stack.pop(ctx, &v, &done));
        EXPECT_TRUE(done);
    });
}

TEST(BranchStack, BelowTracksOccupancy)
{
    rt::par::BranchStack<Ctx> stack(8);
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](Ctx& ctx) {
        EXPECT_TRUE(stack.below(ctx, 1));
        stack.push(ctx, 1u);
        EXPECT_FALSE(stack.below(ctx, 1));
        EXPECT_TRUE(stack.below(ctx, 2));
        stack.push(ctx, 2u);
        EXPECT_FALSE(stack.below(ctx, 2));
        // below() is a racy probe; single-threaded it is exact, and
        // multi-threaded staleness only flips a donation decision —
        // the donation-stress searcher tests cover that regime.
    });
}

TEST(BranchStack, MovesWholeTriviallyCopyablePayloads)
{
    struct Fat {
        std::uint64_t tag;
        std::uint32_t body[40];
    };
    rt::par::BranchStack<Ctx, Fat> stack(2);
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](Ctx& ctx) {
        Fat in{};
        in.tag = 99;
        for (std::uint32_t i = 0; i < 40; ++i) {
            in.body[i] = i * i;
        }
        ASSERT_TRUE(stack.push(ctx, in));
        Fat out{};
        bool done = true;
        ASSERT_TRUE(stack.pop(ctx, &out, &done));
        EXPECT_EQ(out.tag, 99u);
        for (std::uint32_t i = 0; i < 40; ++i) {
            ASSERT_EQ(out.body[i], i * i);
        }
        stack.finish(ctx);
    });
}

// ------------------------------------------------------- GlobalBound

TEST(GlobalBound, TryImproveIsMonotoneUnderContention)
{
    rt::GlobalBound<Ctx> bound;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 2000;
    Padded<std::uint64_t> improvements;
    rt::NativeExecutor exec(kThreads);
    exec.parallel(kThreads, [&](Ctx& ctx) {
        std::uint64_t mine = 0;
        const auto tid = static_cast<std::uint64_t>(ctx.tid());
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            // Distinct candidates across all threads, descending per
            // thread, interleaved across threads.
            const std::uint64_t candidate =
                (kPerThread - i) * kThreads + tid;
            if (bound.tryImprove(ctx, candidate)) {
                ++mine;
            }
            // The bound never exceeds a candidate it accepted.
            EXPECT_LE(bound.current(ctx), candidate);
        }
        ctx.fetchAdd(improvements.value, mine);
    });
    // Global minimum of all candidates: i = kPerThread - 1, tid = 0.
    EXPECT_EQ(bound.value, std::uint64_t{1} * kThreads);
    // Each accepted improvement is strictly decreasing, so there can
    // be at most as many improvements as distinct candidate values,
    // and at least the final winner's acceptance happened.
    EXPECT_GE(improvements.value, 1u);
    EXPECT_LE(improvements.value, kPerThread * kThreads);
}

TEST(GlobalBound, StaleCurrentIsAlwaysAnUpperBound)
{
    rt::GlobalBound<Ctx> bound;
    constexpr int kThreads = 4;
    rt::NativeExecutor exec(kThreads);
    exec.parallel(kThreads, [&](Ctx& ctx) {
        for (std::uint64_t i = 1000; i > 0; --i) {
            const std::uint64_t seen = bound.current(ctx);
            bound.tryImprove(ctx, i);
            // current() may be stale but never below what a later
            // read returns: monotone non-increasing.
            EXPECT_GE(seen, bound.current(ctx));
        }
    });
    EXPECT_EQ(bound.value, 1u);
}

// ------------------------------------------- searcher: replay + TSP

TEST(BnbSearcher, TspReplayModeIsReproducibleAcrossRunsAndMatchesCapture)
{
    const auto cities = graph::generators::tspCities(9, 11);
    rt::bnb::SearchConfig replay;
    replay.deterministic = true;
    for (const int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        rt::NativeExecutor exec(threads);
        const auto first =
            core::tsp(exec, threads, cities, nullptr, replay);
        const auto second =
            core::tsp(exec, threads, cities, nullptr, replay);
        // Same node count, same cost, same tour: replay is a pure
        // function of (instance, nthreads).
        EXPECT_EQ(first.stats.nodes, second.stats.nodes);
        EXPECT_EQ(first.stats.donations, 0u);
        EXPECT_EQ(first.cost, second.cost);
        EXPECT_EQ(first.tour, second.tour);
        const auto capture = core::tsp(exec, threads, cities);
        EXPECT_EQ(first.cost, capture.cost);
        EXPECT_EQ(first.cost, core::seq::tspCost(cities));
    }
}

TEST(BnbSearcher, TspDonationModeFindsOptimum)
{
    const auto cities = graph::generators::tspCities(10, 23);
    const std::uint64_t oracle = core::seq::tspCost(cities);
    rt::bnb::SearchConfig donate;
    donate.donate_factor = 4;
    for (const int threads : {2, 4, 8}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        rt::NativeExecutor exec(threads);
        const auto res =
            core::tsp(exec, threads, cities, nullptr, donate);
        EXPECT_EQ(res.cost, oracle);
    }
}

TEST(BnbSearcher, TspTinyDonationStackStillFindsOptimum)
{
    // A 1-slot shared stack forces nearly every donation attempt to
    // be declined: correctness must not depend on capacity.
    const auto cities = graph::generators::tspCities(9, 31);
    rt::bnb::SearchConfig cramped;
    cramped.donate_factor = 8;
    cramped.stack_capacity = 1;
    rt::NativeExecutor exec(4);
    const auto res = core::tsp(exec, 4, cities, nullptr, cramped);
    EXPECT_EQ(res.cost, core::seq::tspCost(cities));
}

TEST(BnbSearcher, McsReplayModeIsReproducibleAcrossRuns)
{
    const auto pattern = graph::generators::labeledGraph(7, 12, 2, 5);
    const auto target = graph::generators::labeledGraph(8, 16, 2, 6);
    rt::bnb::SearchConfig replay;
    replay.deterministic = true;
    for (const int threads : {1, 2, 4}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        rt::NativeExecutor exec(threads);
        const auto first = core::mcs(exec, threads, pattern, target,
                                     nullptr, replay);
        const auto second = core::mcs(exec, threads, pattern, target,
                                      nullptr, replay);
        EXPECT_EQ(first.stats.nodes, second.stats.nodes);
        EXPECT_EQ(first.stats.donations, 0u);
        EXPECT_EQ(first.size, second.size);
        EXPECT_EQ(first.mapping, second.mapping);
        EXPECT_EQ(first.size, core::seq::mcsSize(pattern, target));
    }
}

// --------------------------------------- TSP 64-city boundary (mask)

/** Ring-structured instance: cycle edges cost 1, the rest 1000. The
 *  unique cheap tour is 0,1,...,n-1 at cost n, and the greedy first
 *  descent finds it immediately, so even n = 64 prunes fast. */
graph::AdjacencyMatrix
ringCities(graph::VertexId n)
{
    graph::AdjacencyMatrix m(n);
    for (graph::VertexId i = 0; i < n; ++i) {
        for (graph::VertexId j = 0; j < n; ++j) {
            const bool cycle_edge =
                j == (i + 1) % n || i == (j + 1) % n;
            m.set(i, j, i == j ? 0 : (cycle_edge ? 1 : 1000));
        }
    }
    return m;
}

TEST(TspBoundary, SolvesExactlyAtTheSixtyFourCityCap)
{
    // Cities 32..63 exercise the high half of the widened visited
    // mask: with a 32-bit mask they would never be marked visited and
    // the tour could not close at cost n.
    const graph::VertexId n = core::kMaxTspCities;
    const auto cities = ringCities(n);
    rt::NativeExecutor exec(1);
    const auto res = core::tsp(exec, 1, cities);
    EXPECT_EQ(res.cost, static_cast<std::uint64_t>(n));
    ASSERT_EQ(res.tour.size(), static_cast<std::size_t>(n));
    // The optimal tour is one of the two ring orientations.
    EXPECT_EQ(res.tour[0], 0u);
    const bool forward = res.tour[1] == 1u;
    for (graph::VertexId i = 0; i < n; ++i) {
        const graph::VertexId expect =
            forward ? i : static_cast<graph::VertexId>((n - i) % n);
        ASSERT_EQ(res.tour[i], expect) << "position " << i;
    }
}

TEST(TspBoundary, CrossesTheOldThirtyCityCap)
{
    // 33 cities: one past the old u32-mask comfort zone, parallel.
    const graph::VertexId n = 33;
    const auto cities = ringCities(n);
    rt::NativeExecutor exec(4);
    const auto res = core::tsp(exec, 4, cities);
    EXPECT_EQ(res.cost, static_cast<std::uint64_t>(n));
}

TEST(TspBoundary, RejectsInstancesPastTheCap)
{
    const auto cities = ringCities(core::kMaxTspCities + 1);
    EXPECT_EXIT({ core::TspPolicy<Ctx> policy(cities, nullptr); },
                ::testing::ExitedWithCode(1), "TSP supports");
}

// ------------------------------------------------ searcher on SimCtx

TEST(BnbSearcherSim, TspReplayIsReproducibleOnTheSimulator)
{
    const auto cities = graph::generators::tspCities(7, 41);
    rt::bnb::SearchConfig replay;
    replay.deterministic = true;
    sim::Machine machine(test::smallSimConfig());
    const auto first = core::tsp(machine, 4, cities, nullptr, replay);
    const auto second = core::tsp(machine, 4, cities, nullptr, replay);
    EXPECT_EQ(first.stats.nodes, second.stats.nodes);
    EXPECT_EQ(first.cost, second.cost);
    EXPECT_EQ(first.cost, core::seq::tspCost(cities));
}

TEST(BnbSearcherSim, McsDonationRunsOnTheSimulator)
{
    const auto pattern = graph::generators::labeledGraph(6, 10, 2, 7);
    const auto target = graph::generators::labeledGraph(7, 12, 2, 8);
    sim::Machine machine(test::smallSimConfig());
    const auto res = core::mcs(machine, 8, pattern, target);
    EXPECT_EQ(res.size, core::seq::mcsSize(pattern, target));
}

} // namespace
} // namespace crono

/**
 * @file
 * Cross-module integration tests: native and simulated executions of
 * the whole suite agree functionally; simulator statistics satisfy
 * their global invariants; the active-vertices instrumentation and
 * the workload catalog compose with the kernels.
 */

#include <gtest/gtest.h>

#include "core/sequential.h"
#include "core/suite.h"
#include "core/workloads.h"
#include "sim/machine.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

TEST(Integration, NativeAndSimulatedSsspAgree)
{
    const graph::Graph g = graph::generators::uniformRandom(400, 1600, 24, 21);
    rt::NativeExecutor exec(4);
    sim::Machine machine(test::smallSimConfig());
    const auto native = core::sssp(exec, 4, g, 3);
    const auto simulated = core::sssp(machine, 8, g, 3);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(native.dist[v], simulated.dist[v]);
    }
}

TEST(Integration, StatsInvariantsAcrossSuite)
{
    core::WorkloadConfig wc;
    wc.graph_vertices = 256;
    wc.edges_per_vertex = 6;
    wc.matrix_vertices = 20;
    wc.tsp_cities = 6;
    wc.pr_iterations = 2;
    wc.comm_rounds = 3;
    const core::WorkloadSet set(wc);
    sim::Machine machine(test::smallSimConfig());

    for (const auto& info : core::allBenchmarks()) {
        core::runBenchmark(info.id, machine, 8,
                           set.forBenchmark(info.id));
        const sim::SimRunStats& st = machine.lastStats();

        // Cache accounting: hits + misses == accesses.
        EXPECT_EQ(st.l1d.hits + st.l1d.totalMisses(), st.l1d.accesses)
            << info.name;
        EXPECT_EQ(st.l2.hits + st.l2.totalMisses(), st.l2.accesses)
            << info.name;
        // Every L1 miss consults the home slice at least once.
        EXPECT_GE(st.l2.accesses, st.l1d.totalMisses()) << info.name;
        // Every L2 miss goes off chip exactly once (plus write-backs).
        EXPECT_GE(st.dram.accesses, st.l2.totalMisses()) << info.name;
        // Flit conservation: flit-hops >= flits (>= 1 hop per message).
        EXPECT_GE(st.network.flit_hops, st.network.flits) << info.name;
        // Breakdown covers each thread's clock: summed breakdown must
        // be at least the completion time (threads end near-together).
        EXPECT_GE(st.breakdown.total() * 1.05 + 1000.0,
                  static_cast<double>(st.completion_cycles))
            << info.name;
        // Energy buckets are populated consistently with the counters.
        EXPECT_GT(st.energy.l1d, 0.0) << info.name;
        EXPECT_EQ(st.energy.dram > 0.0, st.dram.accesses > 0)
            << info.name;
    }
}

TEST(Integration, NormalizedBreakdownSumsToOne)
{
    const graph::Graph g = test::makeGraph("sparse");
    sim::Machine machine(test::smallSimConfig());
    core::bfs(machine, 8, g, 0);
    const sim::Breakdown n = machine.lastStats().breakdown.normalized();
    double sum = 0;
    for (int i = 0; i < sim::kNumComponents; ++i) {
        sum += n.cycles[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Integration, MoreThreadsShiftTimeTowardCommunication)
{
    // The paper's core finding: at high thread counts communication
    // (sharing + synchronization) grows relative to compute.
    const graph::Graph g =
        graph::generators::uniformRandom(1024, 8192, 32, 5);
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 64;
    sim::Machine machine(cfg);

    core::sssp(machine, 1, g, 0);
    const sim::Breakdown one = machine.lastStats().breakdown.normalized();
    core::sssp(machine, 64, g, 0);
    const sim::Breakdown many =
        machine.lastStats().breakdown.normalized();

    const auto comm = [](const sim::Breakdown& b) {
        return b[sim::Component::l2HomeSharers] +
               b[sim::Component::synchronization] +
               b[sim::Component::l2HomeWaiting];
    };
    EXPECT_GT(comm(many), comm(one));
}

TEST(Integration, ScalableKernelActuallyScales)
{
    // APSP is the paper's best scaler; at 16 sources per thread the
    // simulated speedup must be clearly superlinear-free but strong.
    const auto m = graph::AdjacencyMatrix(
        graph::generators::uniformRandom(64, 512, 16, 9));
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 16;
    sim::Machine machine(cfg);
    core::apsp(machine, 1, m);
    const auto seq = machine.lastStats().completion_cycles;
    core::apsp(machine, 16, m);
    const auto par = machine.lastStats().completion_cycles;
    EXPECT_GT(static_cast<double>(seq) / par, 4.0);
}

TEST(Integration, ActiveTrackerSeesParetoFront)
{
    const graph::Graph g = test::makeGraph("road");
    rt::ActiveTracker tracker(4096, 1);
    rt::NativeExecutor exec(4);
    core::sssp(exec, 4, g, 0, &tracker);
    EXPECT_GT(tracker.events(), g.numVertices());
    const auto series = tracker.normalizedSeries(20);
    // The pareto front opens (rises from the single source) and
    // dwindles to zero at the end.
    EXPECT_LT(series.front(), 1.0);
    EXPECT_LE(series.back(), 0.2);
    double peak = 0;
    for (double v : series) {
        peak = std::max(peak, v);
    }
    EXPECT_GT(peak, 0.5);
}

TEST(Integration, WorkloadSetProvidesAllInputs)
{
    core::WorkloadConfig wc;
    wc.graph_vertices = 128;
    wc.matrix_vertices = 12;
    wc.tsp_cities = 5;
    for (core::GraphKind kind :
         {core::GraphKind::sparse, core::GraphKind::road,
          core::GraphKind::social}) {
        wc.kind = kind;
        const core::WorkloadSet set(wc);
        EXPECT_GE(set.graph().numVertices(), 100u)
            << core::graphKindName(kind);
        const core::Workload w =
            set.forBenchmark(core::BenchmarkId::ssspDijk);
        EXPECT_NE(w.graph, nullptr);
        EXPECT_NE(w.matrix, nullptr);
        EXPECT_NE(w.cities, nullptr);
    }
}

TEST(Integration, RegistryMatchesTableOne)
{
    ASSERT_EQ(core::allBenchmarks().size(),
              static_cast<std::size_t>(core::kNumBenchmarks));
    EXPECT_STREQ(core::benchmarkName(core::BenchmarkId::ssspDijk),
                 "SSSP_DIJK");
    EXPECT_STREQ(core::benchmarkInfo(core::BenchmarkId::tsp)
                     .parallelization,
                 "Branch and Bound");
    EXPECT_STREQ(core::benchmarkInfo(core::BenchmarkId::comm).category,
                 "Graph Processing");
}

TEST(Integration, OooConfigRunsWholeSuite)
{
    core::WorkloadConfig wc;
    wc.graph_vertices = 128;
    wc.edges_per_vertex = 4;
    wc.matrix_vertices = 12;
    wc.tsp_cities = 5;
    wc.pr_iterations = 2;
    wc.comm_rounds = 2;
    const core::WorkloadSet set(wc);
    sim::Config cfg = sim::Config::futuristic256(sim::CoreType::outOfOrder);
    cfg.num_cores = 8;
    sim::Machine machine(cfg);
    for (const auto& info : core::allBenchmarks()) {
        const auto run = core::runBenchmark(info.id, machine, 8,
                                            set.forBenchmark(info.id));
        EXPECT_GT(run.time, 0.0) << info.name;
    }
}

} // namespace
} // namespace crono

/**
 * @file
 * Tests for crono_lint's rules (tools/lint_rules.h): the stripper,
 * each rule's positive and negative cases, the justified-allow
 * contract, and the two on-disk fixtures that CI also feeds to the
 * CLI binary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lint_rules.h"

namespace crono {
namespace {

using lint::Finding;
using lint::lintText;

bool
hasRule(const std::vector<Finding>& fs, const std::string& rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
        return f.rule == rule;
    });
}

TEST(LintStrip, CommentsAndStringsAreBlanked)
{
    const std::string out = lint::stripCommentsAndStrings(
        "int a; // std::mutex in a comment\n"
        "/* std::atomic\n   spanning lines */ int b;\n"
        "const char* s = \"std::thread inside\";\n"
        "char c = 'x';\n");
    EXPECT_EQ(out.find("std::mutex"), std::string::npos);
    EXPECT_EQ(out.find("std::atomic"), std::string::npos);
    EXPECT_EQ(out.find("std::thread"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
    // Line structure is preserved for line numbers (5 input lines —
    // the block comment spans two).
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(LintRules, RawSyncTokensFlagged)
{
    const auto fs = lintText("t.cpp",
                             "std::atomic<int> a;\n"
                             "std::atomic_ref<int> r(x);\n"
                             "std::mutex m;\n"
                             "std::thread t;\n"
                             "pthread_mutex_t pm;\n"
                             "__atomic_load_n(&x, 0);\n");
    EXPECT_EQ(fs.size(), 6u);
    EXPECT_TRUE(hasRule(fs, "raw-sync"));
    EXPECT_EQ(fs.front().line, 1);
}

TEST(LintRules, QualifiedNamesDoNotFalsePositive)
{
    // my::mutex / sim-layer identifiers must not trip the std rules.
    const auto fs = lintText("t.cpp",
                             "my::mutex m;\n"
                             "crono::sim::SimMutex sm;\n"
                             "int nonvolatile_count = 0;\n"
                             "ctx.fetchAdd(total, 1);\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintRules, RawIncludeAndParallelStlFlagged)
{
    const auto fs = lintText("t.cpp",
                             "#include <atomic>\n"
                             "#include <vector>\n"
                             "#include <execution>\n"
                             "auto s = std::reduce(std::execution::par, "
                             "v.begin(), v.end());\n");
    EXPECT_TRUE(hasRule(fs, "raw-include"));
    EXPECT_TRUE(hasRule(fs, "parallel-stl"));
    // <vector> is fine: exactly 2 include findings + 1 execution use.
    EXPECT_EQ(fs.size(), 3u);
}

TEST(LintRules, VolatileFlaggedWholeWordOnly)
{
    EXPECT_TRUE(hasRule(lintText("t.cpp", "volatile int x;\n"),
                        "volatile"));
    EXPECT_TRUE(lintText("t.cpp", "int involatile_name;\n").empty());
}

TEST(LintRules, PaddedSlotHeuristic)
{
    EXPECT_TRUE(hasRule(
        lintText("t.cpp", "std::vector<double> sums(nthreads);\n"),
        "padded-slot"));
    EXPECT_TRUE(hasRule(
        lintText("t.cpp",
                 "std::vector<std::uint64_t> hits(\n"
                 "    static_cast<std::size_t>(nthreads), 0);\n"),
        "padded-slot"));
    // Padded / AlignedVector elements are the sanctioned shape.
    EXPECT_TRUE(
        lintText("t.cpp",
                 "std::vector<Padded<double>> sums(nthreads);\n")
            .empty());
    EXPECT_TRUE(
        lintText("t.cpp", "std::vector<double> xs(num_items);\n")
            .empty());
}

TEST(LintAllow, JustifiedAllowSuppresses)
{
    const auto fs = lintText(
        "t.cpp",
        "// crono-lint: allow(volatile): device register, not shared\n"
        "volatile int reg;\n");
    EXPECT_TRUE(fs.empty());

    const auto same_line = lintText(
        "t.cpp",
        "volatile int reg; // crono-lint: allow(volatile): device reg\n");
    EXPECT_TRUE(same_line.empty());
}

TEST(LintAllow, AllowWithoutJustificationIsItselfAFinding)
{
    const auto fs = lintText("t.cpp",
                             "// crono-lint: allow(volatile)\n"
                             "volatile int reg;\n");
    EXPECT_TRUE(hasRule(fs, "bad-allow"));
    // And the underlying violation is NOT suppressed.
    EXPECT_TRUE(hasRule(fs, "volatile"));
}

TEST(LintAllow, AllowDoesNotLeakToOtherRulesOrLines)
{
    const auto fs = lintText(
        "t.cpp",
        "// crono-lint: allow(volatile): justified here\n"
        "volatile int a;\n"
        "volatile int b;\n" // two lines below the allow: not covered
        "std::mutex m;\n"); // different rule: not covered
    EXPECT_FALSE(hasRule(fs, "bad-allow"));
    EXPECT_TRUE(hasRule(fs, "volatile"));
    EXPECT_TRUE(hasRule(fs, "raw-sync"));
}

TEST(LintAllow, UnknownRuleIdRejected)
{
    const auto fs = lintText(
        "t.cpp", "// crono-lint: allow(made-up-rule): because\n");
    EXPECT_TRUE(hasRule(fs, "bad-allow"));
}

#ifdef CRONO_LINT_FIXTURE_DIR
TEST(LintFixtures, RawSharedWriteFixtureFails)
{
    const std::string path = std::string(CRONO_LINT_FIXTURE_DIR) +
                             "/raw_sync_bad.cpp.fixture";
    const auto fs = lint::lintFile(path);
    EXPECT_FALSE(hasRule(fs, "io")) << path;
    EXPECT_TRUE(hasRule(fs, "raw-include"));
    EXPECT_TRUE(hasRule(fs, "raw-sync"));
    EXPECT_TRUE(hasRule(fs, "volatile"));
    EXPECT_TRUE(hasRule(fs, "padded-slot"));
}

TEST(LintFixtures, CleanFixturePasses)
{
    const std::string path = std::string(CRONO_LINT_FIXTURE_DIR) +
                             "/clean_ok.cpp.fixture";
    const auto fs = lint::lintFile(path);
    for (const Finding& f : fs) {
        ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule
                      << "] " << f.message;
    }
}
#endif

} // namespace
} // namespace crono

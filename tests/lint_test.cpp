/**
 * @file
 * Tests for the crono_analyze static-analysis framework (DESIGN.md
 * §16): the lexer (raw strings, digit separators, macro
 * continuations), the structural parser (scope tree, lambda
 * boundaries, capture lists), every pass in the registry — positive,
 * negative, and suppressed for each — the `crono-lint: allow`
 * contract with its hygiene rules, the suppression-file checks, the
 * on-disk fixtures under tests/lint_fixtures/, and the DESIGN.md rule
 * table (generated from ruleCatalog(), so drift fails here).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/static/analyzer.h"
#include "analysis/static/lexer.h"
#include "analysis/static/parser.h"
#include "analysis/static/passes.h"

namespace crono::staticlint {
namespace {

std::size_t
countRule(const std::vector<Finding>& fs, std::string_view rule)
{
    return static_cast<std::size_t>(
        std::count_if(fs.begin(), fs.end(), [&](const Finding& f) {
            return f.rule == rule;
        }));
}

std::string
dump(const std::vector<Finding>& fs)
{
    std::ostringstream os;
    for (const Finding& f : fs) {
        os << f.file << ":" << f.line << " [" << f.rule << "] "
           << f.message << "\n";
    }
    return os.str();
}

/** Analyze an unlayered pseudo-file: every rule but include-layering. */
std::vector<Finding>
lint(std::string_view text)
{
    return analyzeText("t.cpp", text);
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
fixturePath(const std::string& name)
{
    return std::string(CRONO_LINT_FIXTURE_DIR) + "/" + name;
}

// ------------------------------------------------------------ lexer

TEST(Lexer, RawStringsLexAsSingleLiteral)
{
    const auto toks = lex(
        "auto a = R\"(std::mutex inside; \"quoted\")\";\n"
        "auto b = LR\"x(paren )\" trap)x\";\n");
    std::size_t strings = 0;
    for (const Token& t : toks) {
        if (t.kind == Tok::kString) {
            ++strings;
        }
        // Nothing inside the raw literals may surface as code.
        EXPECT_FALSE(t.kind == Tok::kIdent && t.text == "mutex");
        EXPECT_FALSE(t.kind == Tok::kIdent && t.text == "trap");
    }
    EXPECT_EQ(strings, 2u);
}

TEST(Lexer, DigitSeparatorsAreNumbersNotCharLiterals)
{
    const auto toks =
        lex("std::uint64_t n = 1'000'000; int h = 0xFF'00; "
            "std::mutex m;");
    bool sep_number = false;
    for (const Token& t : toks) {
        EXPECT_NE(t.kind, Tok::kChar) << t.text;
        if (t.kind == Tok::kNumber && t.text == "1'000'000") {
            sep_number = true;
        }
    }
    EXPECT_TRUE(sep_number);
    // A naive stripper would treat 1'000 as an opening char literal
    // and swallow the rest of the line; the mutex must still be seen.
    const auto fs = lint("std::uint64_t n = 1'000'000; std::mutex m;");
    EXPECT_EQ(countRule(fs, "raw-sync"), 1u) << dump(fs);
}

TEST(Lexer, LineContinuationsPreservePhysicalLines)
{
    const auto toks = lex("#define ACQ(m) \\\n"
                          "    pthread_mutex_lock(&(m))\n"
                          "int after = 0;\n");
    int lock_line = 0;
    int after_line = 0;
    for (const Token& t : toks) {
        if (t.kind == Tok::kIdent && t.text == "pthread_mutex_lock") {
            lock_line = t.line;
        }
        if (t.kind == Tok::kIdent && t.text == "after") {
            after_line = t.line;
        }
    }
    EXPECT_EQ(lock_line, 2);  // physical line survives the splice
    EXPECT_EQ(after_line, 3); // and the next line is not shifted
    // The continuation-carried token is visible to the rules.
    const auto fs = lint("#define ACQ(m) \\\n"
                         "    pthread_mutex_lock(&(m))\n");
    EXPECT_EQ(countRule(fs, "raw-sync"), 1u) << dump(fs);
}

TEST(Lexer, IncludeYieldsHeaderNameTokens)
{
    const auto toks =
        lex("#include <atomic>\n#include \"graph/graph.h\"\n");
    std::vector<std::string> headers;
    for (const Token& t : toks) {
        if (t.kind == Tok::kHeaderName) {
            headers.push_back(t.text);
        }
    }
    ASSERT_EQ(headers.size(), 2u);
    EXPECT_EQ(headers[0], "<atomic>");
    EXPECT_EQ(headers[1], "\"graph/graph.h\"");
}

TEST(Lexer, StripPreservesLayoutAndBlanksContents)
{
    const std::string src = "int a = 0; // std::mutex in comment\n"
                            "const char* s = \"std::atomic\";\n"
                            "auto r = R\"(volatile)\";\n"
                            "int b = 1'000; std::mutex m;\n";
    const std::string out = stripCommentsAndStrings(src);
    ASSERT_EQ(out.size(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (src[i] == '\n') {
            EXPECT_EQ(out[i], '\n') << i;
        }
    }
    EXPECT_EQ(out.find("mutex in comment"), std::string::npos);
    EXPECT_EQ(out.find("std::atomic"), std::string::npos);
    EXPECT_EQ(out.find("volatile"), std::string::npos);
    // Real code survives, including after a digit separator.
    EXPECT_NE(out.find("std::mutex m;"), std::string::npos);
    EXPECT_NE(out.find("int a = 0;"), std::string::npos);
}

// ----------------------------------------------------------- parser

TEST(Parser, FunctionLambdaAndCaptureStructure)
{
    const Ast ast = parse(lex(
        "void f(int a) {\n"
        "    int x = 0;\n"
        "    auto g = [&, v](int p) { return p + v + x; };\n"
        "    auto h = [&x](int q) { return q + x; };\n"
        "}\n"));
    ASSERT_EQ(ast.lambdas.size(), 2u);
    const Lambda& g = ast.lambdas[0];
    EXPECT_TRUE(g.default_ref);
    ASSERT_EQ(g.val_captures.size(), 1u);
    EXPECT_EQ(g.val_captures[0], "v");
    ASSERT_EQ(g.params.size(), 1u);
    EXPECT_EQ(g.params[0], "p");
    const Lambda& h = ast.lambdas[1];
    EXPECT_FALSE(h.default_ref);
    ASSERT_EQ(h.ref_captures.size(), 1u);
    EXPECT_EQ(h.ref_captures[0], "x");
    std::size_t functions = 0;
    std::size_t lambda_scopes = 0;
    for (const Scope& s : ast.scopes) {
        functions += s.kind == ScopeKind::kFunction ? 1 : 0;
        lambda_scopes += s.kind == ScopeKind::kLambda ? 1 : 0;
    }
    EXPECT_EQ(functions, 1u);
    EXPECT_EQ(lambda_scopes, 2u);
}

TEST(Parser, TrailingSpecifiersStillClassifyAsFunction)
{
    const Ast ast = parse(
        lex("struct S { int g() const noexcept { return 1; } };"));
    const bool has_function = std::any_of(
        ast.scopes.begin(), ast.scopes.end(), [](const Scope& s) {
            return s.kind == ScopeKind::kFunction;
        });
    EXPECT_TRUE(has_function);
}

TEST(Parser, SubscriptsAreNotLambdas)
{
    const Ast ast = parse(
        lex("void f(int* a, int i) { a[0] = 1; a[i + 1] = 2; }"));
    EXPECT_TRUE(ast.lambdas.empty());
}

TEST(Parser, UnderConditionalWalk)
{
    const Ast ast = parse(lex("void f(bool b) {\n"
                              "    if (b) { int inner = 0; }\n"
                              "    int outer = 0;\n"
                              "    for (;;) { int loop = 0; }\n"
                              "}\n"));
    const auto scope_of = [&](std::string_view name) -> int {
        for (CodeIdx i = 0; i < ast.size(); ++i) {
            if (ast.tok(i).kind == Tok::kIdent &&
                ast.tok(i).text == name) {
                return ast.scope_at[i];
            }
        }
        return -1;
    };
    EXPECT_TRUE(ast.underConditional(scope_of("inner")));
    EXPECT_FALSE(ast.underConditional(scope_of("outer")));
    EXPECT_FALSE(ast.underConditional(scope_of("loop")));
}

// ----------------------------------------------------- rule catalog

TEST(Rules, CatalogIsCompleteAndKnown)
{
    const auto& cat = ruleCatalog();
    EXPECT_EQ(cat.size(), 10u);
    for (const RuleInfo& r : cat) {
        EXPECT_TRUE(ruleKnown(r.id)) << r.id;
        EXPECT_NE(ruleTableMarkdown().find(std::string(r.id)),
                  std::string::npos)
            << r.id;
    }
    EXPECT_FALSE(ruleKnown("no-such-rule"));
}

TEST(Rules, LayerPolicyGatesCtxDiscipline)
{
    // Ctx-discipline rules: kernels, graph, and the bnb framework.
    EXPECT_TRUE(ruleApplies("raw-sync", "src/core/bfs.h"));
    EXPECT_TRUE(ruleApplies("raw-sync", "src/graph/builder.cpp"));
    EXPECT_TRUE(ruleApplies("raw-sync", "src/runtime/bnb.h"));
    // The Ctx implementation itself is exempt by documented policy.
    EXPECT_FALSE(ruleApplies("raw-sync", "src/runtime/executor.h"));
    EXPECT_FALSE(ruleApplies("raw-sync", "src/sim/machine.cpp"));
    EXPECT_FALSE(ruleApplies("raw-sync", "src/obs/telemetry.h"));
    // Flow passes and hygiene run everywhere.
    EXPECT_TRUE(
        ruleApplies("barrier-divergence", "src/sim/machine.cpp"));
    EXPECT_TRUE(ruleApplies("capture-escape", "tools/x.cpp"));
    // Unlayered pseudo-files get everything except layering.
    EXPECT_TRUE(ruleApplies("raw-sync", "t.cpp"));
    EXPECT_FALSE(ruleApplies("include-layering", "t.cpp"));
}

TEST(Rules, LayerDagOrder)
{
    EXPECT_EQ(layerOf("src/common/aligned.h"), 0);
    EXPECT_LT(layerOf("src/obs/telemetry.h"),
              layerOf("src/sim/machine.h"));
    EXPECT_LT(layerOf("src/sim/machine.h"),
              layerOf("src/runtime/executor.h"));
    EXPECT_LT(layerOf("src/runtime/executor.h"),
              layerOf("src/graph/graph.h"));
    EXPECT_LT(layerOf("src/graph/graph.h"),
              layerOf("src/analysis/report.h"));
    EXPECT_LT(layerOf("src/analysis/report.h"),
              layerOf("src/core/bfs.h"));
    EXPECT_LT(layerOf("src/core/bfs.h"),
              layerOf("tools/crono_bench_main.cpp"));
    EXPECT_EQ(layerOf("tools/x.cpp"), layerOf("bench/x.cpp"));
    EXPECT_EQ(layerOf("elsewhere/x.cpp"), -1);
    EXPECT_EQ(layerOfInclude("graph/graph.h"),
              layerOf("src/graph/graph.h"));
    EXPECT_EQ(layerOfInclude("vector"), -1);
}

// -------------------------------------------- ctx-discipline passes

TEST(CtxDiscipline, FlagsEachTokenRule)
{
    const auto fs =
        lint("#include <mutex>\n"
             "std::mutex m;\n"
             "volatile int v = 0;\n"
             "void f() { std::for_each(std::execution::par, "
             "a, b, op); }\n"
             "std::vector<double> slots(nthreads);\n");
    EXPECT_EQ(countRule(fs, "raw-include"), 1u) << dump(fs);
    EXPECT_EQ(countRule(fs, "raw-sync"), 1u) << dump(fs);
    EXPECT_EQ(countRule(fs, "volatile"), 1u) << dump(fs);
    EXPECT_EQ(countRule(fs, "parallel-stl"), 1u) << dump(fs);
    EXPECT_EQ(countRule(fs, "padded-slot"), 1u) << dump(fs);
}

TEST(CtxDiscipline, PthreadAndBuiltinAtomicsFlagged)
{
    const auto fs = lint("void f() { pthread_mutex_lock(&m); "
                         "__atomic_fetch_add(&x, 1, 0); "
                         "__sync_synchronize(); }");
    EXPECT_EQ(countRule(fs, "raw-sync"), 3u) << dump(fs);
}

TEST(CtxDiscipline, PaddedSlotsAndFunctionsNotFlagged)
{
    EXPECT_TRUE(
        lint("std::vector<Padded<double>> slots(nthreads);").empty());
    // A function *returning* a vector, with a thread-count parameter,
    // is not a per-thread slot variable — the token shape after the
    // template-id is the same, so the pass must look for the body.
    EXPECT_TRUE(lint("inline std::vector<double>\n"
                     "makeSlots(int nthreads)\n"
                     "{\n"
                     "    return {};\n"
                     "}\n")
                    .empty());
    EXPECT_TRUE(
        lint("std::vector<double> makeSlots(int nthreads);").empty());
}

TEST(CtxDiscipline, StringsAndCommentsDoNotTrip)
{
    EXPECT_TRUE(lint("// std::mutex in a comment\n"
                     "const char* s = \"std::atomic<int>\";\n"
                     "auto r = R\"(volatile int x;)\";\n")
                    .empty());
}

// -------------------------------------------------- capture escape

TEST(CaptureEscape, SharedAliasWriteFlaggedValueLocalNot)
{
    const auto fs = lint(
        "template <class Ctx>\n"
        "void sum(Ctx& ctx, std::uint64_t n, std::uint64_t& total) {\n"
        "    std::uint64_t mine = 0;\n"
        "    rt::par::vertexMap(ctx, n, [&](std::uint64_t v) {\n"
        "        total += v;\n"
        "        mine += v;\n"
        "    });\n"
        "    ctx.fetchAdd(total, mine);\n"
        "}\n");
    ASSERT_EQ(countRule(fs, "capture-escape"), 1u) << dump(fs);
    const auto it =
        std::find_if(fs.begin(), fs.end(), [](const Finding& f) {
            return f.rule == "capture-escape";
        });
    EXPECT_EQ(it->line, 5); // the `total += v;` line, not `mine`
    EXPECT_NE(it->message.find("total"), std::string::npos);
}

TEST(CaptureEscape, ExplicitRefCaptureFlaggedValueCaptureNot)
{
    const auto by_ref = lint(
        "template <class Ctx>\n"
        "void f(Ctx& ctx, std::uint64_t n, std::uint64_t& total) {\n"
        "    rt::par::vertexMap(ctx, n, [&total](std::uint64_t v) {\n"
        "        total += v;\n"
        "    });\n"
        "}\n");
    EXPECT_EQ(countRule(by_ref, "capture-escape"), 1u)
        << dump(by_ref);
    const auto by_val = lint(
        "template <class Ctx>\n"
        "void f(Ctx& ctx, std::uint64_t n, std::uint64_t total) {\n"
        "    rt::par::vertexMap(ctx, n, [total](std::uint64_t v) "
        "mutable {\n"
        "        total += v;\n"
        "    });\n"
        "}\n");
    EXPECT_EQ(countRule(by_val, "capture-escape"), 0u)
        << dump(by_val);
}

TEST(CaptureEscape, CtxAndTidIndexedSlotsExempt)
{
    EXPECT_TRUE(lint("template <class Ctx>\n"
                     "void f(Ctx& ctx, std::uint64_t n, Slots& slots) "
                     "{\n"
                     "    rt::par::vertexMap(ctx, n, "
                     "[&](std::uint64_t v) {\n"
                     "        ctx.fetchAdd(slots.total, v);\n"
                     "        slots[ctx.tid()].value += v;\n"
                     "    });\n"
                     "}\n")
                    .empty());
}

TEST(CaptureEscape, BnbPolicyEmitLambdaCovered)
{
    const auto fs = lint(
        "template <class Ctx>\n"
        "void dfs(Ctx& ctx, Policy& policy, Stats& st) {\n"
        "    unsigned long emitted = 0;\n"
        "    policy.expand(ctx, n, [&](const Node& child) {\n"
        "        ++emitted;\n"
        "        ++st.donations;\n"
        "    });\n"
        "}\n");
    ASSERT_EQ(countRule(fs, "capture-escape"), 1u) << dump(fs);
    EXPECT_EQ(fs.front().line, 6); // st, not the value local emitted
}

// ---------------------------------------------- barrier divergence

TEST(BarrierDivergence, FlagsDivergentShapesNotUniformLoops)
{
    const auto fs = lint("template <class Ctx>\n"
                         "void k(Ctx& ctx, int rounds) {\n"
                         "    for (int r = 0; r < rounds; ++r) {\n"
                         "        ctx.barrier();\n" // uniform: fine
                         "    }\n"
                         "    if (ctx.tid() == 0) {\n"
                         "        ctx.barrier();\n" // divergent
                         "    }\n"
                         "    if (ctx.tid() == 1)\n"
                         "        ctx.barrier();\n" // braceless
                         "}\n");
    EXPECT_EQ(countRule(fs, "barrier-divergence"), 2u) << dump(fs);
}

TEST(BarrierDivergence, ConditionalReturnBeforeBarrier)
{
    const auto fs = lint("template <class Ctx>\n"
                         "void k(Ctx& ctx) {\n"
                         "    if (ctx.tid() == 0) {\n"
                         "        return;\n" // skips the rendezvous
                         "    }\n"
                         "    ctx.barrier();\n"
                         "}\n");
    ASSERT_EQ(countRule(fs, "barrier-divergence"), 1u) << dump(fs);
    EXPECT_EQ(fs.front().line, 4);
    // A return *after* the last barrier is a normal early exit.
    EXPECT_TRUE(lint("template <class Ctx>\n"
                     "void k(Ctx& ctx) {\n"
                     "    ctx.barrier();\n"
                     "    if (ctx.tid() == 0) {\n"
                     "        return;\n"
                     "    }\n"
                     "}\n")
                    .empty());
}

// ----------------------------------------------- include layering

TEST(IncludeLayering, UpwardIncludesFlaggedDownwardNot)
{
    const auto upward = analyzeSources(
        {{"src/obs/metrics_probe.h",
          "#include \"common/macros.h\"\n"
          "#include \"runtime/executor.h\"\n"}});
    EXPECT_EQ(countRule(upward.findings, "include-layering"), 1u)
        << dump(upward.findings);
    EXPECT_EQ(upward.findings.front().line, 2);
    const auto downward = analyzeSources(
        {{"src/core/kernel_probe.h",
          "#include \"graph/graph.h\"\n"
          "#include \"runtime/par.h\"\n"
          "#include \"obs/telemetry.h\"\n"}});
    EXPECT_EQ(countRule(downward.findings, "include-layering"), 0u)
        << dump(downward.findings);
    // tools/ and bench/ sit on top and may include anything.
    const auto tools = analyzeSources(
        {{"tools/bench_compare.cpp",
          "#include \"core/suite.h\"\n#include \"obs/json.h\"\n"}});
    EXPECT_EQ(countRule(tools.findings, "include-layering"), 0u);
    // System headers are not part of the DAG.
    const auto sys = analyzeSources(
        {{"src/common/aligned.h", "#include <vector>\n"}});
    EXPECT_EQ(countRule(sys.findings, "include-layering"), 0u);
}

// --------------------------------------------------- allow contract

TEST(Allows, JustifiedAllowSuppressesSameLineAndLineAbove)
{
    const auto above = analyzeSources(
        {{"t.cpp",
          "// crono-lint: allow(raw-sync): host-side setup thread\n"
          "std::thread t;\n"}});
    EXPECT_TRUE(above.findings.empty()) << dump(above.findings);
    EXPECT_EQ(above.suppressed, 1u);
    const auto same = analyzeSources(
        {{"t.cpp",
          "std::thread t; // crono-lint: allow(raw-sync): host side\n"}});
    EXPECT_TRUE(same.findings.empty()) << dump(same.findings);
    EXPECT_EQ(same.suppressed, 1u);
}

TEST(Allows, MissingJustificationIsBadAllow)
{
    const auto fs = lint("// crono-lint: allow(raw-sync)\n"
                         "std::thread t;\n");
    EXPECT_EQ(countRule(fs, "bad-allow"), 1u) << dump(fs);
    // The malformed allow suppresses nothing: the raw-sync stays.
    EXPECT_EQ(countRule(fs, "raw-sync"), 1u) << dump(fs);
}

TEST(Allows, UnknownRuleIdRejected)
{
    const auto fs =
        lint("// crono-lint: allow(made-up-rule): because\n"
             "int x = 0;\n");
    EXPECT_EQ(countRule(fs, "bad-allow"), 1u) << dump(fs);
}

TEST(Allows, HygieneRulesAreNeverSuppressible)
{
    const auto fs = lint(
        "// crono-lint: allow(stale-suppression): trying to hide\n"
        "int x = 0;\n");
    EXPECT_EQ(countRule(fs, "bad-allow"), 1u) << dump(fs);
}

TEST(Allows, DoesNotLeakToOtherRulesOrLines)
{
    const auto fs = lint(
        "// crono-lint: allow(raw-sync): for the mutex only\n"
        "std::mutex m; volatile int v = 0;\n"
        "std::mutex m2;\n");
    EXPECT_EQ(countRule(fs, "raw-sync"), 1u) << dump(fs); // m2 only
    EXPECT_EQ(countRule(fs, "volatile"), 1u) << dump(fs);
}

TEST(Allows, UnusedAllowBecomesStaleSuppression)
{
    const auto fs = lint(
        "// crono-lint: allow(raw-sync): mutex was removed since\n"
        "int x = 0;\n");
    ASSERT_EQ(countRule(fs, "stale-suppression"), 1u) << dump(fs);
    EXPECT_EQ(fs.front().line, 1);
}

TEST(Allows, BacktickedDocMentionIsNotADirective)
{
    EXPECT_TRUE(
        lint("// the `crono-lint: allow(rule): why` contract\n"
             "int x = 0;\n")
            .empty());
}

// ------------------------------------------- suppression-file rules

TEST(SuppressionFiles, EntryWithoutJustificationCommentIsBadAllow)
{
    Options opt;
    opt.suppression_files.push_back(
        {"detector.allow", "race:relaxSlot\n"});
    const auto res =
        analyzeSources({{"t.cpp", "void relaxSlot() {}\n"}}, opt);
    EXPECT_EQ(countRule(res.findings, "bad-allow"), 1u)
        << dump(res.findings);
}

TEST(SuppressionFiles, BlankLineDetachesTheComment)
{
    Options opt;
    opt.suppression_files.push_back(
        {"detector.allow",
         "# justified: benign per-slot race\n"
         "\n"
         "race:relaxSlot\n"});
    const auto res =
        analyzeSources({{"t.cpp", "void relaxSlot() {}\n"}}, opt);
    EXPECT_EQ(countRule(res.findings, "bad-allow"), 1u)
        << dump(res.findings);
}

TEST(SuppressionFiles, PatternMatchingNothingIsStale)
{
    Options opt;
    opt.suppression_files.push_back(
        {"tsan.supp",
         "# justified: historical suppression\n"
         "race:functionThatNoLongerExists\n"});
    const auto res = analyzeSources({{"t.cpp", "int x = 0;\n"}}, opt);
    EXPECT_EQ(countRule(res.findings, "stale-suppression"), 1u)
        << dump(res.findings);
}

TEST(SuppressionFiles, JustifiedMatchingEntryIsClean)
{
    Options opt;
    opt.suppression_files.push_back(
        {"tsan.supp",
         "# declared-racy probe: stale reads only defer work\n"
         "race:*relaxSlot*\n"});
    const auto res =
        analyzeSources({{"t.cpp", "void relaxSlot() {}\n"}}, opt);
    EXPECT_TRUE(res.findings.empty()) << dump(res.findings);
}

// ------------------------------------------------ on-disk fixtures

TEST(Fixtures, RawSyncBadFlagsEveryConstruct)
{
    const auto res =
        analyzeFiles({fixturePath("raw_sync_bad.cpp.fixture")});
    EXPECT_EQ(countRule(res.findings, "raw-include"), 2u)
        << dump(res.findings);
    EXPECT_EQ(countRule(res.findings, "raw-sync"), 4u)
        << dump(res.findings);
    EXPECT_EQ(countRule(res.findings, "volatile"), 1u)
        << dump(res.findings);
    EXPECT_EQ(countRule(res.findings, "padded-slot"), 1u)
        << dump(res.findings);
}

TEST(Fixtures, CleanFixtureIsClean)
{
    const auto res =
        analyzeFiles({fixturePath("clean_ok.cpp.fixture")});
    EXPECT_TRUE(res.findings.empty()) << dump(res.findings);
    EXPECT_EQ(res.suppressed, 1u); // the exercised allow(volatile)
}

TEST(Fixtures, CaptureEscapeDetectedAndAllowed)
{
    const auto bad = analyzeFiles(
        {fixturePath("capture_escape_bad.cpp.fixture")});
    ASSERT_EQ(bad.findings.size(), 1u) << dump(bad.findings);
    EXPECT_EQ(bad.findings.front().rule, "capture-escape");
    EXPECT_NE(bad.findings.front().message.find("total"),
              std::string::npos);
    const auto ok = analyzeFiles(
        {fixturePath("capture_escape_allowed.cpp.fixture")});
    EXPECT_TRUE(ok.findings.empty()) << dump(ok.findings);
    EXPECT_EQ(ok.suppressed, 1u);
}

TEST(Fixtures, BarrierDivergenceDetectedAndAllowed)
{
    const auto bad = analyzeFiles(
        {fixturePath("barrier_divergence_bad.cpp.fixture")});
    EXPECT_EQ(countRule(bad.findings, "barrier-divergence"), 3u)
        << dump(bad.findings);
    EXPECT_EQ(bad.findings.size(), 3u) << dump(bad.findings);
    const auto ok = analyzeFiles(
        {fixturePath("barrier_divergence_allowed.cpp.fixture")});
    EXPECT_TRUE(ok.findings.empty()) << dump(ok.findings);
    EXPECT_EQ(ok.suppressed, 1u);
}

TEST(Fixtures, IncludeLayeringDetectedAndAllowed)
{
    // Layering depends on the file's repo-relative path, so feed the
    // fixture text under a pretend src/obs/ location.
    const auto bad = analyzeSources(
        {{"src/obs/layering_probe.h",
          slurp(fixturePath("include_layering_bad.h.fixture"))}});
    ASSERT_EQ(bad.findings.size(), 1u) << dump(bad.findings);
    EXPECT_EQ(bad.findings.front().rule, "include-layering");
    const auto ok = analyzeSources(
        {{"src/obs/layering_probe.h",
          slurp(fixturePath("include_layering_allowed.h.fixture"))}});
    EXPECT_TRUE(ok.findings.empty()) << dump(ok.findings);
    EXPECT_EQ(ok.suppressed, 1u);
}

TEST(Fixtures, StaleAllowDetected)
{
    const auto res =
        analyzeFiles({fixturePath("stale_allow_bad.cpp.fixture")});
    ASSERT_EQ(res.findings.size(), 1u) << dump(res.findings);
    EXPECT_EQ(res.findings.front().rule, "stale-suppression");
}

// ------------------------------------------------------ misc driver

TEST(Driver, UnreadableFileIsAFinding)
{
    const auto res =
        analyzeFiles({fixturePath("does_not_exist.cpp")});
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_EQ(res.findings.front().rule, "io");
}

TEST(Driver, FindingsAreSortedByLinePerFile)
{
    const auto fs = lint("std::mutex a;\n"
                         "int ok = 0;\n"
                         "std::mutex b;\n"
                         "volatile int v = 0;\n");
    ASSERT_EQ(fs.size(), 3u) << dump(fs);
    EXPECT_LT(fs[0].line, fs[1].line);
    EXPECT_LT(fs[1].line, fs[2].line);
}

// ----------------------------------------------------- docs drift

TEST(Docs, DesignRuleTableMatchesCatalog)
{
    const std::string design = slurp(CRONO_DESIGN_MD);
    const std::string table = ruleTableMarkdown();
    std::istringstream lines(table);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) {
            continue;
        }
        EXPECT_NE(design.find(line), std::string::npos)
            << "DESIGN.md rule table is out of date; regenerate with "
               "`crono_analyze --rules-md`. Missing line:\n"
            << line;
    }
}

} // namespace
} // namespace crono::staticlint

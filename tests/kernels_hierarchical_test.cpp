/**
 * @file
 * Hierarchical (multi-level) Louvain tests: graph coarsening
 * invariants and the full algorithm's behaviour vs the single level.
 */

#include <gtest/gtest.h>

#include "core/community.h"
#include "graph/builder.h"
#include "core/connected_components.h"
#include "graph/generators.h"
#include "runtime/executor.h"
#include "sim/machine.h"

namespace crono {
namespace {

namespace gen = graph::generators;

TEST(Coarsen, CollapsesCommunitiesAndSumsWeights)
{
    // A 4-cycle with labels {0,0,1,1}: collapses to two vertices
    // joined by the two crossing edges (weights 1 + 1 = 2).
    graph::GraphBuilder b(4, true);
    b.addEdge(0, 1, 5); // intra community 0
    b.addEdge(2, 3, 7); // intra community 1
    b.addEdge(1, 2, 1); // crossing
    b.addEdge(3, 0, 1); // crossing
    const graph::Graph g = std::move(b).build();
    AlignedVector<graph::VertexId> labels = {0, 0, 2, 2};

    std::vector<graph::VertexId> dense;
    const graph::Graph coarse =
        core::coarsenByCommunities(g, labels, &dense);
    ASSERT_EQ(coarse.numVertices(), 2u);
    ASSERT_EQ(coarse.numEdges(), 2u); // one logical edge, mirrored
    EXPECT_EQ(coarse.weights(0)[0], 2u);
    EXPECT_EQ(dense[0], 0u);
    EXPECT_EQ(dense[2], 1u);
}

TEST(Coarsen, SingletonLabelsReproduceTopology)
{
    const graph::Graph g = gen::grid(4, 4);
    AlignedVector<graph::VertexId> labels(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        labels[v] = v;
    }
    std::vector<graph::VertexId> dense;
    const graph::Graph coarse =
        core::coarsenByCommunities(g, labels, &dense);
    EXPECT_EQ(coarse.numVertices(), g.numVertices());
    EXPECT_EQ(coarse.numEdges(), g.numEdges());
}

TEST(Coarsen, AllOneLabelGivesEdgelessPoint)
{
    const graph::Graph g = gen::complete(6);
    AlignedVector<graph::VertexId> labels(6, 3);
    std::vector<graph::VertexId> dense;
    const graph::Graph coarse =
        core::coarsenByCommunities(g, labels, &dense);
    EXPECT_EQ(coarse.numVertices(), 1u);
    EXPECT_EQ(coarse.numEdges(), 0u);
}

TEST(Hierarchical, RecoversPlantedCliquesExactly)
{
    const graph::Graph g = gen::cliqueChain(5, 6, false);
    rt::NativeExecutor exec(4);
    const auto result =
        core::communityDetectionHierarchical(exec, 4, g, 16, 4);
    EXPECT_NEAR(result.modularity, 0.8, 1e-9);
    for (graph::VertexId k = 0; k < 5; ++k) {
        for (graph::VertexId i = 0; i < 6; ++i) {
            EXPECT_EQ(result.community[k * 6 + i], k * 6);
        }
    }
}

TEST(Hierarchical, AtLeastMatchesSingleLevelOnModularGraphs)
{
    for (std::uint64_t seed : {3u, 9u, 27u}) {
        const graph::Graph g = gen::socialNetwork(9, 6, seed);
        rt::NativeExecutor exec(4);
        const double single =
            core::communityDetection(exec, 4, g, 16).modularity;
        const double multi =
            core::communityDetectionHierarchical(exec, 4, g, 16, 4)
                .modularity;
        // Coarse levels only merge; allow a small heuristic slack.
        EXPECT_GE(multi, single - 0.02) << "seed " << seed;
    }
}

TEST(Hierarchical, LabelsAreSmallestMembersAndRespectComponents)
{
    const graph::Graph g = gen::uniformRandom(300, 900, 16, 5);
    rt::NativeExecutor exec(4);
    const auto result =
        core::communityDetectionHierarchical(exec, 4, g, 12, 3);
    const auto cc = core::connectedComponents(exec, 4, g);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        const graph::VertexId c = result.community[v];
        ASSERT_LT(c, g.numVertices());
        EXPECT_LE(c, v); // named by smallest member
        EXPECT_EQ(result.community[c], c);
        // Communities never span connected components.
        EXPECT_EQ(cc.label[c], cc.label[v]);
    }
}

TEST(Hierarchical, RunsOnSimulator)
{
    const graph::Graph g = gen::cliqueChain(4, 5, true);
    sim::Config cfg = sim::Config::futuristic256();
    cfg.num_cores = 8;
    sim::Machine machine(cfg);
    const auto result =
        core::communityDetectionHierarchical(machine, 8, g, 12, 3);
    EXPECT_GT(result.modularity, 0.5);
}

} // namespace
} // namespace crono

/**
 * @file
 * Frontier-engine tests: work-list push/pop/steal/drain mechanics,
 * dense<->sparse conversion round-trips under the adaptive policy,
 * the LocalWorklist ring, and parameterized checks that every
 * FrontierMode matches the sequential references for SSSP, BFS and
 * connected components on lattice, uniform-random and power-law
 * graphs. Simulator tests carry "Sim" in their suite name so the
 * TSan harness can filter them out (ucontext fibers and TSan do not
 * mix).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/apsp.h"
#include "core/betweenness.h"
#include "core/bfs.h"
#include "core/connected_components.h"
#include "core/sequential.h"
#include "core/sssp.h"
#include "graph/generators.h"
#include "runtime/frontier.h"
#include "tests/kernel_test_util.h"

namespace crono {
namespace {

using rt::FrontierEngine;
using rt::FrontierMode;

/** Larger-than-catalog graphs so multi-chunk queues get exercised. */
graph::Graph
bigGraph(const std::string& name)
{
    namespace gen = graph::generators;
    if (name == "lattice") {
        return gen::grid(20, 20);
    }
    if (name == "uniform") {
        return gen::uniformRandom(1500, 6000, 32, 7);
    }
    if (name == "powerlaw") {
        return gen::socialNetwork(9, 5, 23);
    }
    ADD_FAILURE() << "unknown graph " << name;
    return gen::path(2);
}

FrontierMode
modeFromIndex(int index)
{
    switch (index) {
      case 1:
        return FrontierMode::kSparse;
      case 2:
        return FrontierMode::kAdaptive;
      default:
        return FrontierMode::kFlagScan;
    }
}

// ---------------------------------------------------------------------
// Engine mechanics (native contexts).
// ---------------------------------------------------------------------

TEST(FrontierEngine_, DenseFrontThreshold)
{
    // front > V^2 / (k * E), k = 4.
    EXPECT_EQ(rt::denseFrontThreshold(1024, 8192), 32u);
    EXPECT_EQ(rt::denseFrontThreshold(1000, 1000), 250u);
    // Degenerate inputs stay usable: no edges means never dense.
    EXPECT_EQ(rt::denseFrontThreshold(64, 0), 64u);
    // The threshold never collapses to zero (front==0 ends the run).
    EXPECT_GE(rt::denseFrontThreshold(10, 1000000), 1u);
}

TEST(FrontierEngine_, ModeNames)
{
    EXPECT_STREQ(rt::frontierModeName(FrontierMode::kFlagScan),
                 "flagscan");
    EXPECT_STREQ(rt::frontierModeName(FrontierMode::kSparse), "sparse");
    EXPECT_STREQ(rt::frontierModeName(FrontierMode::kAdaptive),
                 "adaptive");
}

TEST(FrontierEngine_, DenseRoundPerMode)
{
    FrontierEngine scan(1024, 8192, 1, FrontierMode::kFlagScan);
    FrontierEngine sparse(1024, 8192, 1, FrontierMode::kSparse);
    FrontierEngine adaptive(1024, 8192, 1, FrontierMode::kAdaptive);
    EXPECT_TRUE(scan.denseRound(1));
    EXPECT_FALSE(sparse.denseRound(1024));
    EXPECT_FALSE(adaptive.denseRound(32)); // threshold is exclusive
    EXPECT_TRUE(adaptive.denseRound(33));
}

TEST(FrontierEngine_, SeedIsIdempotentAndDrainsSparse)
{
    FrontierEngine f(1000, 2000, 1, FrontierMode::kSparse);
    f.seed(3);
    f.seed(500);
    f.seed(999);
    f.seed(3); // duplicate must not double-count
    ASSERT_EQ(f.initialFrontSize(), 3u);

    std::vector<std::uint32_t> got;
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](rt::NativeCtx& ctx) {
        std::uint64_t front = f.initialFrontSize();
        std::uint64_t round = 0;
        while (front != 0) {
            f.processCurrent(ctx, round, f.denseRound(front),
                             [&](std::uint32_t v) { got.push_back(v); });
            front = f.advance(ctx, round);
            ++round;
        }
    });
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<std::uint32_t>{3, 500, 999}));
}

TEST(FrontierEngine_, ActivatePropagatesAcrossRounds)
{
    // A chain: round r's single vertex activates vertex r+1. The
    // double-buffered queues must hand exactly {r} to round r.
    constexpr std::uint32_t kLen = 9;
    FrontierEngine f(64, 128, 1, FrontierMode::kSparse);
    f.seed(0);
    std::vector<std::vector<std::uint32_t>> per_round;
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](rt::NativeCtx& ctx) {
        std::uint64_t front = f.initialFrontSize();
        std::uint64_t round = 0;
        while (front != 0) {
            per_round.emplace_back();
            f.processCurrent(ctx, round, false, [&](std::uint32_t v) {
                per_round.back().push_back(v);
                if (v + 1 < kLen) {
                    EXPECT_TRUE(f.activate(ctx, round, v + 1));
                    // Re-activation of a pending vertex is a no-op.
                    EXPECT_FALSE(f.activate(ctx, round, v + 1));
                }
            });
            front = f.advance(ctx, round);
            ++round;
        }
    });
    ASSERT_EQ(per_round.size(), static_cast<std::size_t>(kLen));
    for (std::uint32_t r = 0; r < kLen; ++r) {
        EXPECT_EQ(per_round[r], std::vector<std::uint32_t>{r})
            << "round " << r;
    }
}

TEST(FrontierEngine_, AdaptiveDenseSparseRoundTrip)
{
    // V = 1024, E = 8192 => dense threshold 32. A binary-tree
    // expansion from vertex 1 produces fronts 1, 2, 4, ..., 512, so
    // rounds 0..5 run sparse and rounds 6..9 run dense; the level
    // sets [2^r, 2^(r+1)) must come out intact either way — i.e. the
    // dense<->sparse conversion round-trips.
    FrontierEngine f(1024, 8192, 1, FrontierMode::kAdaptive);
    f.seed(1);
    bool saw_sparse = false;
    bool saw_dense = false;
    std::vector<std::vector<std::uint32_t>> per_round;
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](rt::NativeCtx& ctx) {
        std::uint64_t front = f.initialFrontSize();
        std::uint64_t round = 0;
        while (front != 0) {
            const bool dense = f.denseRound(front);
            (dense ? saw_dense : saw_sparse) = true;
            per_round.emplace_back();
            f.processCurrent(ctx, round, dense, [&](std::uint32_t v) {
                per_round.back().push_back(v);
                if (2 * v + 1 < 1024) {
                    f.activate(ctx, round, 2 * v);
                    f.activate(ctx, round, 2 * v + 1);
                }
            });
            front = f.advance(ctx, round);
            ++round;
        }
    });
    EXPECT_TRUE(saw_sparse);
    EXPECT_TRUE(saw_dense);
    ASSERT_EQ(per_round.size(), 10u);
    for (std::uint32_t r = 0; r < 10; ++r) {
        std::vector<std::uint32_t> expect(1u << r);
        std::iota(expect.begin(), expect.end(), 1u << r);
        std::sort(per_round[r].begin(), per_round[r].end());
        EXPECT_EQ(per_round[r], expect) << "round " << r;
    }
}

TEST(FrontierEngine_, SeedAllExactlyOnceUnderStealing)
{
    // 4 native threads, every vertex seeded: own-queue draining plus
    // stealing must deliver each vertex to exactly one consumer.
    constexpr std::uint32_t kV = 50000;
    FrontierEngine f(kV, 100000, 4, FrontierMode::kSparse);
    f.seedAll();
    ASSERT_EQ(f.initialFrontSize(), static_cast<std::uint64_t>(kV));

    AlignedVector<std::uint32_t> count(kV, 0);
    rt::NativeExecutor exec(4);
    exec.parallel(4, [&](rt::NativeCtx& ctx) {
        std::uint64_t front = f.initialFrontSize();
        std::uint64_t round = 0;
        while (front != 0) {
            f.processCurrent(ctx, round, false, [&](std::uint32_t v) {
                ctx.fetchAdd(count[v], 1u);
            });
            front = f.advance(ctx, round);
            ++round;
        }
    });
    for (std::uint32_t v = 0; v < kV; ++v) {
        ASSERT_EQ(count[v], 1u) << "vertex " << v;
    }
}

TEST(FrontierEngine_, LocalWorklistFifoWithWraparound)
{
    rt::LocalWorklist wl(4); // ring of 5 slots
    rt::NativeExecutor exec(1);
    exec.parallel(1, [&](rt::NativeCtx& ctx) {
        EXPECT_TRUE(wl.empty());
        wl.push(ctx, 1);
        wl.push(ctx, 2);
        wl.push(ctx, 3);
        wl.push(ctx, 4);
        EXPECT_EQ(wl.pop(ctx), 1u);
        EXPECT_EQ(wl.pop(ctx), 2u);
        wl.push(ctx, 5); // wraps the tail cursor
        wl.push(ctx, 6);
        EXPECT_EQ(wl.pop(ctx), 3u);
        EXPECT_EQ(wl.pop(ctx), 4u);
        EXPECT_EQ(wl.pop(ctx), 5u);
        EXPECT_EQ(wl.pop(ctx), 6u);
        EXPECT_TRUE(wl.empty());
        wl.clear();
        EXPECT_TRUE(wl.empty());
    });
}

// ---------------------------------------------------------------------
// Engine mechanics on the simulator (deterministic scheduling).
// ---------------------------------------------------------------------

TEST(FrontierSim, ChunkStealingSpreadsOneThreadsQueue)
{
    // All 2000 seeds land in thread 0's block of V=16000 (block size
    // 2000 at 8 threads), i.e. 8 chunks in a single queue. With the
    // deterministic simulator schedule the other threads must steal a
    // share, and every vertex is still processed exactly once.
    constexpr std::uint32_t kV = 16000;
    constexpr std::uint32_t kSeeded = 2000;
    FrontierEngine f(kV, 32000, 8, FrontierMode::kSparse);
    for (std::uint32_t v = 0; v < kSeeded; ++v) {
        f.seed(v);
    }
    AlignedVector<std::uint32_t> count(kV, 0);
    std::vector<Padded<std::uint64_t>> per_thread(8);
    sim::Machine machine(test::smallSimConfig());
    machine.parallel(8, [&](sim::SimCtx& ctx) {
        std::uint64_t front = f.initialFrontSize();
        std::uint64_t round = 0;
        while (front != 0) {
            f.processCurrent(ctx, round, false, [&](std::uint32_t v) {
                ctx.fetchAdd(count[v], 1u);
                ctx.fetchAdd(per_thread[ctx.tid()].value,
                             std::uint64_t{1});
            });
            front = f.advance(ctx, round);
            ++round;
        }
    });
    std::uint64_t total = 0;
    int threads_with_work = 0;
    for (const auto& p : per_thread) {
        total += p.value;
        threads_with_work += p.value != 0 ? 1 : 0;
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(kSeeded));
    EXPECT_GE(threads_with_work, 2) << "no chunk was ever stolen";
    for (std::uint32_t v = 0; v < kSeeded; ++v) {
        ASSERT_EQ(count[v], 1u) << "vertex " << v;
    }
    for (std::uint32_t v = kSeeded; v < kV; ++v) {
        ASSERT_EQ(count[v], 0u) << "vertex " << v;
    }
}

// ---------------------------------------------------------------------
// Kernels: every mode matches the sequential reference.
// ---------------------------------------------------------------------

/** (graph name, mode index, thread count). */
using GraphModeThreads = std::tuple<std::string, int, int>;

std::string
graphModeThreadsName(const ::testing::TestParamInfo<GraphModeThreads>& i)
{
    return std::get<0>(i.param) + "_" +
           rt::frontierModeName(modeFromIndex(std::get<1>(i.param))) +
           "_t" + std::to_string(std::get<2>(i.param));
}

class FrontierKernelParamTest
    : public ::testing::TestWithParam<GraphModeThreads> {};

TEST_P(FrontierKernelParamTest, SsspMatchesSequential)
{
    const auto [name, mode_index, threads] = GetParam();
    const graph::Graph g = bigGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::sssp(exec, threads, g, 0, nullptr,
                                   modeFromIndex(mode_index));
    const auto expect = core::seq::sssp(g, 0);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.dist[v], expect[v]) << name << " vertex " << v;
    }
}

TEST_P(FrontierKernelParamTest, BfsMatchesSequential)
{
    const auto [name, mode_index, threads] = GetParam();
    const graph::Graph g = bigGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result =
        core::bfs(exec, threads, g, 0, graph::kNoVertex, nullptr,
                  modeFromIndex(mode_index));
    const auto expect = core::seq::bfsLevels(g, 0);
    std::uint64_t expect_reached = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.level[v], expect[v]) << name << " vertex " << v;
        expect_reached += expect[v] != core::kNoLevel ? 1 : 0;
    }
    EXPECT_EQ(result.reached, expect_reached);
}

TEST_P(FrontierKernelParamTest, ConnectedComponentsMatchesSequential)
{
    const auto [name, mode_index, threads] = GetParam();
    const graph::Graph g = bigGraph(name);
    rt::NativeExecutor exec(threads);
    const auto result = core::connectedComponents(
        exec, threads, g, nullptr, modeFromIndex(mode_index));
    const auto expect = core::seq::componentLabels(g);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.label[v], expect[v]) << name << " vertex " << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, FrontierKernelParamTest,
    ::testing::Combine(::testing::Values("lattice", "uniform",
                                         "powerlaw"),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(1, 4)),
    graphModeThreadsName);

TEST(FrontierKernels, ApspWorklistMatchesFlagScan)
{
    const graph::AdjacencyMatrix m(test::makeGraph("sparse"));
    rt::NativeExecutor exec(4);
    const auto scan =
        core::apsp(exec, 4, m, nullptr, FrontierMode::kFlagScan);
    const auto wl = core::apsp(exec, 4, m, nullptr, FrontierMode::kSparse);
    ASSERT_EQ(scan.dist.size(), wl.dist.size());
    for (std::size_t i = 0; i < scan.dist.size(); ++i) {
        ASSERT_EQ(scan.dist[i], wl.dist[i]) << "entry " << i;
    }
}

TEST(FrontierKernels, BetweennessWorklistMatchesSequential)
{
    const graph::AdjacencyMatrix m(test::makeGraph("grid"));
    rt::NativeExecutor exec(4);
    const auto expect = core::seq::betweenness(m);
    for (const FrontierMode mode :
         {FrontierMode::kSparse, FrontierMode::kAdaptive}) {
        const auto result =
            core::betweenness(exec, 4, m, nullptr, mode);
        for (graph::VertexId v = 0; v < m.numVertices(); ++v) {
            ASSERT_EQ(result.centrality[v], expect[v])
                << rt::frontierModeName(mode) << " vertex " << v;
        }
    }
}

TEST(FrontierKernels, BfsEarlyStopStillFindsTarget)
{
    const graph::Graph g = bigGraph("lattice");
    rt::NativeExecutor exec(4);
    const auto expect = core::seq::bfsLevels(g, 0);
    const graph::VertexId target = g.numVertices() - 1;
    const auto result = core::bfs(exec, 4, g, 0, target, nullptr,
                                  FrontierMode::kSparse);
    EXPECT_TRUE(result.found_target);
    EXPECT_EQ(result.level[target], expect[target]);
}

// ---------------------------------------------------------------------
// Per-round variability reporting.
// ---------------------------------------------------------------------

TEST(FrontierVariability, PerRoundSeriesMatchesRoundCount)
{
    const graph::Graph g = test::makeGraph("road");
    rt::NativeExecutor exec(4);
    const auto result = core::sssp(exec, 4, g, 0, nullptr,
                                   FrontierMode::kSparse);
    ASSERT_EQ(result.run.round_variability.size(), result.rounds);
    ASSERT_GT(result.rounds, 1u);
    double sum = 0.0;
    for (const double v : result.run.round_variability) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        sum += v;
    }
    // The scalar becomes the per-round mean for frontier kernels.
    EXPECT_DOUBLE_EQ(result.run.variability,
                     sum / static_cast<double>(result.rounds));
}

TEST(FrontierVariability, FlagScanKeepsWholeRunScalar)
{
    const graph::Graph g = test::makeGraph("road");
    rt::NativeExecutor exec(4);
    const auto result = core::sssp(exec, 4, g, 0, nullptr,
                                   FrontierMode::kFlagScan);
    EXPECT_TRUE(result.run.round_variability.empty());
}

// ---------------------------------------------------------------------
// Kernels on the simulated machine (kSparse / kAdaptive complete and
// stay correct under the deterministic fiber schedule).
// ---------------------------------------------------------------------

TEST(FrontierSim, SsspSparseMatchesSequential)
{
    const graph::Graph g = test::makeGraph("road");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::sssp(machine, 8, g, 17, nullptr,
                                   FrontierMode::kSparse);
    const auto expect = core::seq::sssp(g, 17);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.dist[v], expect[v]);
    }
    EXPECT_GT(result.run.time, 0.0);
}

TEST(FrontierSim, BfsAdaptiveMatchesSequential)
{
    const graph::Graph g = test::makeGraph("social");
    sim::Machine machine(test::smallSimConfig());
    const auto result =
        core::bfs(machine, 8, g, 3, graph::kNoVertex, nullptr,
                  FrontierMode::kAdaptive);
    const auto expect = core::seq::bfsLevels(g, 3);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.level[v], expect[v]);
    }
}

TEST(FrontierSim, ConnectedComponentsSparseMatchesSequential)
{
    const graph::Graph g = test::makeGraph("cliques");
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::connectedComponents(
        machine, 8, g, nullptr, FrontierMode::kSparse);
    const auto expect = core::seq::componentLabels(g);
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(result.label[v], expect[v]);
    }
    EXPECT_EQ(result.num_components, 5u);
}

TEST(FrontierSim, ApspWorklistMatchesSequential)
{
    const graph::AdjacencyMatrix m(test::makeGraph("ring"));
    sim::Machine machine(test::smallSimConfig());
    const auto result =
        core::apsp(machine, 8, m, nullptr, FrontierMode::kSparse);
    const auto expect = core::seq::apsp(m);
    ASSERT_EQ(result.dist.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(result.dist[i], expect[i]) << "entry " << i;
    }
}

TEST(FrontierSim, BetweennessWorklistMatchesSequential)
{
    const graph::AdjacencyMatrix m(test::makeGraph("star"));
    sim::Machine machine(test::smallSimConfig());
    const auto result = core::betweenness(machine, 8, m, nullptr,
                                          FrontierMode::kAdaptive);
    const auto expect = core::seq::betweenness(m);
    for (graph::VertexId v = 0; v < m.numVertices(); ++v) {
        ASSERT_EQ(result.centrality[v], expect[v]) << "vertex " << v;
    }
}

} // namespace
} // namespace crono

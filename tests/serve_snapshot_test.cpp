/**
 * @file
 * Snapshot-isolation conformance for the serve stack (DESIGN.md
 * §17.2): a pinned epoch answers every query identically forever —
 * across later ingests, across compactions, across reorderings — and
 * concurrent clients hammering a live server against a live ingest
 * stream never observe a torn or cross-epoch answer. The concurrent
 * tests are the TSan leg's serve workload in analysis.yml: eight
 * client threads, one mutator, every interleaving the scheduler cares
 * to produce.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "runtime/executor.h"
#include "serve/query.h"
#include "serve/server.h"
#include "serve/store.h"

namespace crono::serve {
namespace {

/** Shared test input: small enough for TSan, sharded meaningfully. */
graph::Graph
testGraph()
{
    return graph::generators::kronecker(/*scale=*/8, /*edge_factor=*/6,
                                        /*max_weight=*/32, /*seed=*/7);
}

std::vector<graph::Edge>
randomBatch(Rng* rng, graph::VertexId n, int count)
{
    std::vector<graph::Edge> edges;
    for (int i = 0; i < count; ++i) {
        edges.push_back(
            {static_cast<graph::VertexId>(rng->nextBelow(n)),
             static_cast<graph::VertexId>(rng->nextBelow(n)),
             static_cast<graph::Weight>(1 + rng->nextBelow(32))});
    }
    return edges;
}

TEST(ServeSnapshot, PinnedEpochSurvivesIngestAndCompaction)
{
    StoreConfig cfg;
    cfg.num_shards = 4;
    cfg.reordering = graph::Reordering::kDegreeSort;
    GraphStore store(testGraph(), cfg);
    rt::NativeExecutor exec(2);
    QueryEngine engine(store, exec);

    const std::shared_ptr<const Snapshot> pinned = store.snapshot();
    const graph::VertexId n = pinned->numVertices();

    // Reference answers at the pinned epoch, one per query class.
    Request sssp;
    sssp.op = Op::kSsspDist;
    sssp.source = 3;
    sssp.target = n - 1;
    Request comp;
    comp.op = Op::kComponent;
    comp.source = 5;
    Request rank;
    rank.op = Op::kRankScore;
    rank.source = 2;
    Request topd;
    topd.op = Op::kTopDegree;
    topd.k = 8;
    const Response sssp0 = engine.executeOn(sssp, pinned);
    const Response comp0 = engine.executeOn(comp, pinned);
    const Response rank0 = engine.executeOn(rank, pinned);
    const Response topd0 = engine.executeOn(topd, pinned);
    ASSERT_EQ(sssp0.status, Status::kOk);
    ASSERT_EQ(sssp0.epoch, pinned->epoch());

    // Mutate the store hard: several batches, then a compaction that
    // rebuilds the base and re-runs the reordering.
    Rng rng(99);
    for (int b = 0; b < 5; ++b) {
        ASSERT_EQ(store.ingestBatch(randomBatch(&rng, n, 16)),
                  Status::kOk);
    }
    const std::uint64_t compacted_epoch = store.compact();
    EXPECT_GT(compacted_epoch, pinned->epoch());
    EXPECT_EQ(store.snapshot()->deltaEdges(), 0u);

    // The pinned epoch still answers bit-for-bit identically, even
    // though its arrays were evicted from the engine's LRU by newer
    // epochs' results in between.
    const Response sssp1 = engine.executeOn(sssp, pinned);
    const Response comp1 = engine.executeOn(comp, pinned);
    const Response rank1 = engine.executeOn(rank, pinned);
    const Response topd1 = engine.executeOn(topd, pinned);
    EXPECT_EQ(sssp1.epoch, pinned->epoch());
    EXPECT_EQ(sssp1.values, sssp0.values);
    EXPECT_EQ(comp1.values, comp0.values);
    EXPECT_EQ(rank1.values, rank0.values);
    EXPECT_EQ(topd1.values, topd0.values);
    EXPECT_EQ(topd1.vertices, topd0.vertices);
}

TEST(ServeSnapshot, CompactionIsSemanticallyInvisible)
{
    // Ingest a batch, answer queries on the delta-overlay epoch, then
    // compact (same edge multiset, fresh reordered base) and re-ask:
    // every answer must be identical although the internal id space
    // was rebuilt underneath.
    StoreConfig cfg;
    cfg.num_shards = 3;
    cfg.reordering = graph::Reordering::kDegreeSort;
    GraphStore store(testGraph(), cfg);
    rt::NativeExecutor exec(2);
    QueryEngine engine(store, exec);
    const graph::VertexId n = store.snapshot()->numVertices();

    Rng rng(5);
    ASSERT_EQ(store.ingestBatch(randomBatch(&rng, n, 40)), Status::kOk);
    const std::shared_ptr<const Snapshot> overlay = store.snapshot();
    ASSERT_GT(overlay->deltaEdges(), 0u);
    store.compact();
    const std::shared_ptr<const Snapshot> folded = store.snapshot();
    ASSERT_EQ(folded->deltaEdges(), 0u);
    ASSERT_EQ(folded->numEdges(), overlay->numEdges());

    Rng pick(17);
    for (int i = 0; i < 12; ++i) {
        Request req;
        req.op = (i % 3 == 0)   ? Op::kSsspDist
                 : (i % 3 == 1) ? Op::kBfsDist
                                : Op::kComponent;
        req.source = static_cast<graph::VertexId>(pick.nextBelow(n));
        req.target = static_cast<graph::VertexId>(pick.nextBelow(n));
        const Response a = engine.executeOn(req, overlay);
        const Response b = engine.executeOn(req, folded);
        ASSERT_EQ(a.status, Status::kOk);
        ASSERT_EQ(b.status, Status::kOk);
        EXPECT_EQ(a.values, b.values) << "query " << i;
    }

    // Top-k answers must also match: canonical external-id ordering
    // makes them independent of the internal renumbering.
    Request topk;
    topk.op = Op::kTopDegree;
    topk.k = 10;
    const Response ta = engine.executeOn(topk, overlay);
    const Response tb = engine.executeOn(topk, folded);
    EXPECT_EQ(ta.values, tb.values);
    EXPECT_EQ(ta.vertices, tb.vertices);
}

TEST(ServeSnapshot, ConcurrentClientsAgainstLiveIngest)
{
    // The tentpole stress: 8 closed-loop clients against a running
    // server while the store churns epochs underneath. Snapshot
    // isolation over the wire means: any two kOk responses for the
    // same (op, source, target) carrying the same epoch must carry
    // the same values. We record every answer and verify globally.
    StoreConfig cfg;
    cfg.num_shards = 4;
    cfg.reordering = graph::Reordering::kDegreeSort;
    cfg.compact_batches = 4; // force auto-compactions mid-run
    GraphStore store(testGraph(), cfg);
    rt::NativeExecutor exec(2);
    ServerConfig scfg;
    scfg.num_workers = 2;
    scfg.query.nthreads = 2;
    scfg.query.pagerank_iterations = 5;
    Server server(store, exec, scfg);
    server.start();

    const graph::VertexId n = store.snapshot()->numVertices();
    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 40;

    // (op, source, target, epoch) -> value; shared verification map.
    using Key = std::tuple<int, graph::VertexId, graph::VertexId,
                           std::uint64_t>;
    std::mutex seen_mutex;
    std::map<Key, std::vector<std::uint64_t>> seen;
    std::atomic<int> violations{0};
    std::atomic<int> errors{0};

    const auto clientBody = [&](int cid) {
        Client client(server);
        Rng rng(1000 + static_cast<std::uint64_t>(cid));
        std::uint64_t last_epoch = 0;
        for (int i = 0; i < kRequestsPerClient; ++i) {
            Request req;
            const int pick = static_cast<int>(rng.nextBelow(4));
            req.op = pick == 0   ? Op::kSsspDist
                     : pick == 1 ? Op::kBfsDist
                     : pick == 2 ? Op::kComponent
                                 : Op::kRankScore;
            // Few distinct sources: collisions across clients are the
            // point — the same key must reproduce per epoch.
            req.source = static_cast<graph::VertexId>(
                rng.nextBelow(8));
            req.target = static_cast<graph::VertexId>(
                rng.nextBelow(n));
            const Response resp = client.call(req);
            if (resp.status != Status::kOk ||
                resp.values.size() != 1) {
                ++errors;
                continue;
            }
            // A client's sequential calls may never travel back in
            // time: snapshots only move forward.
            if (resp.epoch < last_epoch) {
                ++violations;
            }
            last_epoch = resp.epoch;
            const Key key{static_cast<int>(req.op), req.source,
                          req.op == Op::kComponent ||
                                  req.op == Op::kRankScore
                              ? 0
                              : req.target,
                          resp.epoch};
            const std::lock_guard<std::mutex> lock(seen_mutex);
            seen[key].push_back(resp.values[0]);
        }
    };

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back(clientBody, c);
    }

    // The mutator: ingest through its own wire client (exercising the
    // server's ingest thread), letting auto-compaction trigger.
    std::atomic<bool> stop_ingest{false};
    std::thread mutator([&] {
        Client client(server);
        Rng rng(31337);
        while (!stop_ingest.load()) {
            Request req;
            req.op = Op::kIngest;
            req.edges = randomBatch(&rng, n, 8);
            const Response resp = client.call(req);
            if (resp.status != Status::kOk) {
                ++errors;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    });

    for (std::thread& t : clients) {
        t.join();
    }
    stop_ingest = true;
    mutator.join();
    server.stop();

    EXPECT_EQ(errors.load(), 0);
    EXPECT_EQ(violations.load(), 0);
    // Snapshot isolation: per (query, epoch) exactly one answer.
    std::size_t multi = 0;
    for (const auto& [key, values] : seen) {
        for (const std::uint64_t v : values) {
            EXPECT_EQ(v, values.front())
                << "epoch " << std::get<3>(key) << " op "
                << std::get<0>(key);
        }
        if (values.size() > 1) {
            ++multi;
        }
    }
    // The few-sources pool guarantees actual cross-client collisions;
    // if nothing collided the assertion above was vacuous.
    EXPECT_GT(multi, 0u);
    EXPECT_GT(store.stats().epoch, 1u);
}

TEST(ServeSnapshot, ServerStopRejectsCleanly)
{
    // Queries racing a stop() must either complete kOk or come back
    // kRejected — never hang, never crash.
    GraphStore store(testGraph(), StoreConfig{});
    rt::NativeExecutor exec(2);
    Server server(store, exec);
    server.start();

    std::atomic<int> finished{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&server, &finished, c] {
            Client client(server);
            Rng rng(static_cast<std::uint64_t>(c));
            for (int i = 0; i < 50; ++i) {
                Request req;
                req.op = Op::kSsspDist;
                req.source = static_cast<graph::VertexId>(
                    rng.nextBelow(64));
                req.target = static_cast<graph::VertexId>(
                    rng.nextBelow(64));
                const Response resp = client.call(req);
                if (resp.status != Status::kOk &&
                    resp.status != Status::kRejected) {
                    ADD_FAILURE() << statusName(resp.status);
                }
                ++finished;
            }
        });
    }
    // Stop mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.stop();
    for (std::thread& t : clients) {
        t.join();
    }
    EXPECT_EQ(finished.load(), 4 * 50);
}

} // namespace
} // namespace crono::serve

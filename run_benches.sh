#!/bin/bash
# Regenerate every table and figure; see EXPERIMENTS.md for the index.
#
# Usage: run_benches.sh [--json] [args passed to every bench]
#   --json   also write BENCH_micro.json (bench_micro --json) next to
#            this script.
#
# Exits nonzero if any bench failed, with a summary of the failures.
set -u
cd "$(dirname "$0")"

write_json=0
if [ "${1:-}" = "--json" ]; then
  write_json=1
  shift
fi

failed=()
for b in build/bench/bench_table1_suite build/bench/bench_fig1_breakdown \
         build/bench/bench_fig2_active_vertices build/bench/bench_fig3_l1_miss \
         build/bench/bench_fig4_hierarchy_miss build/bench/bench_fig5_vertex_scaling \
         build/bench/bench_fig6_energy build/bench/bench_fig7_ooo_breakdown \
         build/bench/bench_fig8_ooo_speedup build/bench/bench_fig9_real_machine \
         build/bench/bench_table4_graphs build/bench/bench_ablation_ackwise \
         build/bench/bench_ablation_locality build/bench/bench_ablation_noc; do
  echo "================================================================"
  echo "### $b $*"
  "$b" "$@" || { echo "FAILED: $b"; failed+=("$b"); }
  echo
done

echo "### build/bench/bench_micro (microbenchmarks)"
build/bench/bench_micro --benchmark_min_time=0.2 \
  || { echo "FAILED: bench_micro"; failed+=(bench_micro); }

if [ "$write_json" = 1 ]; then
  echo "### build/bench/bench_micro --json BENCH_micro.json"
  build/bench/bench_micro --json BENCH_micro.json \
    || { echo "FAILED: bench_micro --json"; failed+=("bench_micro --json"); }
fi

echo "================================================================"
if [ "${#failed[@]}" -ne 0 ]; then
  echo "${#failed[@]} bench(es) FAILED:"
  printf '  %s\n' "${failed[@]}"
  exit 1
fi
echo "All benches passed."

#!/bin/bash
# Regenerate every table and figure; see EXPERIMENTS.md for the index.
set -u
cd "$(dirname "$0")"
for b in build/bench/bench_table1_suite build/bench/bench_fig1_breakdown \
         build/bench/bench_fig2_active_vertices build/bench/bench_fig3_l1_miss \
         build/bench/bench_fig4_hierarchy_miss build/bench/bench_fig5_vertex_scaling \
         build/bench/bench_fig6_energy build/bench/bench_fig7_ooo_breakdown \
         build/bench/bench_fig8_ooo_speedup build/bench/bench_fig9_real_machine \
         build/bench/bench_table4_graphs build/bench/bench_ablation_ackwise \
         build/bench/bench_ablation_locality build/bench/bench_ablation_noc; do
  echo "================================================================"
  echo "### $b $*"
  "$b" "$@" || echo "FAILED: $b"
  echo
done
echo "### build/bench/bench_micro (microbenchmarks)"
build/bench/bench_micro --benchmark_min_time=0.2 || echo "FAILED: bench_micro"

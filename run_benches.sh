#!/bin/bash
# Regenerate every table and figure; see EXPERIMENTS.md for the index.
#
# Usage: run_benches.sh [--json[=DIR]] [args passed to every bench]
#   --json[=DIR]  write machine-readable reports into DIR (default:
#                 alongside this script), one file per benchmark:
#                 bench_micro writes DIR/BENCH_micro.json
#                 (crono.bench.v1), bench_reorder writes
#                 DIR/table_reorder.json (crono.bench.v1, one row per
#                 kernel x graph x ordering), bench_gap writes
#                 DIR/table_gap.json (crono.bench.v1 with
#                 baseline-normalized speedup fields), bench_bnb writes
#                 DIR/table_bnb.json (crono.bench.v1, the
#                 branch-and-bound thread/mode scaling table), and every
#                 harness receives --json=DIR so multi-kernel sweeps
#                 (bench_table1_suite) emit one crono.metrics.v1 file
#                 per kernel instead of overwriting a single shared
#                 path. bench_profile writes DIR/table_profile.json
#                 (crono.profile.v1, span-attributed hardware
#                 counters). tests/report_schema_test.cpp
#                 (CRONO_REPORT_DIR) smoke-parses every emitted
#                 document. Finally every crono.bench.v1 report is
#                 aggregated into BENCH_summary.json at the repo root
#                 (bench_compare --aggregate), the single document the
#                 cross-PR perf trajectory tracks.
#
# Exits nonzero if any bench failed, with a summary of the failures.
set -u
cd "$(dirname "$0")"

json_dir=""
case "${1:-}" in
  --json)   json_dir="."; shift ;;
  --json=*) json_dir="${1#--json=}"; shift ;;
esac

json_args=()
if [ -n "$json_dir" ]; then
  mkdir -p "$json_dir"
  json_args=("--json=$json_dir")
fi

failed=()
for b in build/bench/bench_table1_suite build/bench/bench_fig1_breakdown \
         build/bench/bench_fig2_active_vertices build/bench/bench_fig3_l1_miss \
         build/bench/bench_fig4_hierarchy_miss build/bench/bench_fig5_vertex_scaling \
         build/bench/bench_fig6_energy build/bench/bench_fig7_ooo_breakdown \
         build/bench/bench_fig8_ooo_speedup build/bench/bench_fig9_real_machine \
         build/bench/bench_table4_graphs build/bench/bench_ablation_ackwise \
         build/bench/bench_ablation_locality build/bench/bench_ablation_noc \
         build/bench/bench_reorder build/bench/bench_gap \
         build/bench/bench_bnb build/bench/bench_profile; do
  echo "================================================================"
  echo "### $b ${json_args[*]:-} $*"
  "$b" ${json_args[@]+"${json_args[@]}"} "$@" \
    || { echo "FAILED: $b"; failed+=("$b"); }
  echo
done

echo "### build/bench/bench_micro (microbenchmarks)"
build/bench/bench_micro --benchmark_min_time=0.2 \
  || { echo "FAILED: bench_micro"; failed+=(bench_micro); }

if [ -n "$json_dir" ]; then
  echo "### build/bench/bench_micro --json $json_dir/BENCH_micro.json"
  build/bench/bench_micro --json "$json_dir/BENCH_micro.json" \
    || { echo "FAILED: bench_micro --json"; failed+=("bench_micro --json"); }

  # Roll every crono.bench.v1 report into one summary at the repo
  # root; bench_compare skips the crono.metrics.v1 / crono.profile.v1
  # documents the sweeps also emit. A stale summary from a previous
  # run must not feed itself back in.
  summary_inputs=()
  for f in "$json_dir"/*.json; do
    [ "$(basename "$f")" = "BENCH_summary.json" ] && continue
    summary_inputs+=("$f")
  done
  echo "### bench_compare --aggregate BENCH_summary.json"
  build/tools/bench_compare --aggregate BENCH_summary.json \
      ${summary_inputs[@]+"${summary_inputs[@]}"} \
    || { echo "FAILED: bench_compare --aggregate"; failed+=(bench_compare); }
fi

echo "================================================================"
if [ "${#failed[@]}" -ne 0 ]; then
  echo "${#failed[@]} bench(es) FAILED:"
  printf '  %s\n' "${failed[@]}"
  exit 1
fi
echo "All benches passed."
